"""High-level user-facing API.

Wraps the engine and the parallel driver behind two small classes:

* :class:`AutoClass` — sequential Bayesian classification of a
  :class:`~repro.data.Database` (fit / predict / report);
* :class:`PAutoClass` — the same interface, executed SPMD on a
  registered backend: ``"serial"``, ``"threads"``, ``"processes"``, or
  ``"sim"`` (the virtual-time CS-2 — also returns the simulated
  timing).  Backends live in the :data:`BACKENDS` registry and new ones
  can be added with :func:`register_backend`.

Both produce identical classifications (a tested invariant); the choice
is about *how* the work runs, which is the paper's whole point.

``fit`` on either class returns a unified :class:`Run` carrying the
search ``result``, the observability ``record`` (when fitted with
``instrument="phases"`` or ``"full"``; see :mod:`repro.obs`), and a
paper-style ``report()`` of per-rank phase timings.  The ``"sim"``
backend additionally reports the virtual elapsed seconds and — at
``instrument="full"`` — the rendered virtual-time timeline.

Inference is sklearn-shaped and uniform: ``predict`` /
``predict_proba`` / ``predict_logproba`` / ``score`` exist identically
on :class:`AutoClass`, :class:`PAutoClass` (raising
:class:`NotFittedError` before ``fit``), on the returned :class:`Run`,
and on the servable :class:`repro.serve.FittedModel` a run exports via
:meth:`Run.fitted` — all delegating to the same allocation-free batch
kernels in :mod:`repro.serve.scoring`.

Fit-time options (``kernels=``, ``instrument=``, ``verify=``,
``checkpoint*=``, ``try_groups=``, ``faults=``, ``collectives=``) are
one validated :class:`FitConfig`; the bare keyword arguments both
classes accept are a thin shim that builds the same object.
"""

from __future__ import annotations

import logging
import time
from collections.abc import Callable
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path

import numpy as np

from repro.ckpt.manager import CheckpointSpec, check_policy
from repro.data.database import Database
from repro.data.shards import is_streamable
from repro.engine.classification import Classification
from repro.engine.report import classification_report
from repro.engine.search import SearchConfig, SearchResult, run_search
from repro.kernels import config as kernel_config
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import CollectiveConfig
from repro.mpc.faults import FaultInjector
from repro.mpc.procworld import TRANSPORTS, run_spmd_processes
from repro.mpc.serial import SerialComm
from repro.mpc.threadworld import run_spmd_threads
from repro.obs.record import CommEventRecord, RunRecord
from repro.obs.recorder import Recorder, check_instrument, recording
from repro.obs.runtime import build_run_record, recorded_pautoclass

logger = logging.getLogger(__name__)

#: Exponential-backoff schedule for checkpointed restarts: the n-th
#: retry waits ``RESTART_BACKOFF_BASE * 2**(n-1)`` seconds, capped.
RESTART_BACKOFF_BASE = 0.05
RESTART_BACKOFF_CAP = 5.0


def restart_backoff_seconds(attempt: int) -> float:
    """Backoff before retry ``attempt`` (1-based), exponential + capped."""
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return min(RESTART_BACKOFF_BASE * (2 ** (attempt - 1)), RESTART_BACKOFF_CAP)


def _resolve_checkpoint(
    checkpoint: str,
    checkpoint_dir: str | Path | None,
    resume: bool,
) -> CheckpointSpec | None:
    """Normalize the fit-level checkpoint options into a CheckpointSpec."""
    if checkpoint == "off":
        if checkpoint_dir is not None:
            # A directory without a policy means "checkpoint, cheaply".
            checkpoint = "per_try"
        else:
            return None
    check_policy(checkpoint)
    if checkpoint_dir is None:
        raise ValueError(
            f"checkpoint={checkpoint!r} requires checkpoint_dir="
        )
    return CheckpointSpec(
        directory=str(checkpoint_dir), policy=checkpoint, resume=resume
    )


def _surface_restarts(run: Run) -> None:
    """Expose restart bookkeeping through the run's obs record.

    Rank 0's record gains a ``restarts`` counter and one comm event per
    retry (phase ``"restart"``, ``seconds`` = the backoff slept), so an
    instrumented fault-tolerant run carries its recovery history in the
    same schema as everything else.  No-op when uninstrumented or when
    the run was clean.
    """
    if run.record is None or not run.retry_log:
        return
    rank0 = run.record.ranks[0]
    rank0.counters["restarts"] = run.restarts
    for _attempt, backoff, _reason in run.retry_log:
        rank0.comm_events.append(
            CommEventRecord(phase="restart", nbytes=0, seconds=backoff)
        )


#: Valid values of the ``verify=`` fit option.
VERIFY_LEVELS = ("off", "trace", "strict")


def check_verify(verify: str, config: SearchConfig) -> None:
    """Validate a fit-level ``verify=`` option."""
    if verify not in VERIFY_LEVELS:
        raise ValueError(f"verify {verify!r} not in {VERIFY_LEVELS}")
    if verify != "off" and config.max_seconds is not None:
        raise ValueError(
            "verify='trace'/'strict' needs a deterministic search; "
            "max_seconds makes the try count wall-clock-dependent and "
            "no shadow run could be expected to conform"
        )


def _streamed_fallback_config(
    config: SearchConfig, db, init_method_defaulted: bool
) -> SearchConfig:
    """Effective search config for a fit over ``db``.

    A bare streamed fit cannot run the (default) ``"seeded"``
    initializer — it needs the full database in memory — so when the
    caller never chose an ``init_method``, fall back to AutoClass's
    random-assignment start, exactly as
    :func:`repro.parallel.driver.run_pautoclass_partitioned` does.  An
    *explicit* ``init_method="seeded"`` still fails loudly downstream.
    """
    if (
        init_method_defaulted
        and config.init_method == "seeded"
        and is_streamable(db)
    ):
        return dc_replace(config, init_method="sharp")
    return config


def check_streamed_verify(db, verify: str) -> None:
    """Refuse the conformance shadow run over streamed (sharded) data.

    The trace harness replays per-cycle weight matrices in memory; a
    streamed fit never materializes them.  Streamed-vs-in-memory
    agreement has its own differential tests instead (``tests/stream``).
    """
    if verify != "off" and is_streamable(db):
        raise ValueError(
            "verify='trace'/'strict' replays the search through the "
            "in-memory trace harness and cannot stream a "
            "ShardedDatabase; fit with verify='off' (streamed fits are "
            "covered by the streamed==in-memory differential tests) or "
            "materialize() the data"
        )


def _check_try_groups(
    try_groups: int | str | None, n_processors: int | None = None
) -> None:
    """Validate a ``try_groups`` option (range-checked when the world
    size is known)."""
    if try_groups is None or try_groups == "auto":
        return
    if not isinstance(try_groups, int) or isinstance(try_groups, bool):
        raise ValueError(
            "try_groups must be None, 'auto', or an int, "
            f"got {try_groups!r}"
        )
    if try_groups < 1:
        raise ValueError(f"try_groups must be >= 1, got {try_groups}")
    if n_processors is not None and try_groups > n_processors:
        raise ValueError(
            f"try_groups={try_groups} must be in [1, n_processors="
            f"{n_processors}]"
        )


#: Sentinel distinguishing "keyword not passed" from an explicit value
#: (so bare fit keywords can shim onto :class:`FitConfig` defaults).
_UNSET = object()


@dataclass(frozen=True)
class FitConfig:
    """Every fit-time option of :class:`AutoClass` / :class:`PAutoClass`,
    validated once.

    One frozen object replaces the historical kwarg sprawl across the
    constructors and ``fit`` (``instrument=``, ``kernels=``,
    ``verify=``, ``checkpoint*=``, ``try_groups=``, ``faults=``,
    ``collectives=``).  Both classes still accept the same bare
    keywords — they are a thin shim that builds (or
    :meth:`merged`-overrides) this object; passing ``options=``
    *and* a bare keyword is an error, never a silent merge.

    ``try_groups`` / ``collectives`` / ``faults`` are parallel-only:
    :class:`AutoClass` rejects configs that set them.
    """

    #: Observability level: ``"off"`` | ``"phases"`` | ``"full"``.
    instrument: str = "off"
    #: Kernel path: None (ambient default) | ``"fused"`` | ``"reference"``.
    kernels: str | None = None
    #: Conformance shadow run: ``"off"`` | ``"trace"`` | ``"strict"``.
    verify: str = "off"
    #: Checkpoint policy: ``"off"`` | ``"per_try"`` | ``"per_cycle"``.
    checkpoint: str = "off"
    checkpoint_dir: str | Path | None = None
    resume: bool = True
    max_restarts: int = 0
    #: Fault injection plan (:class:`repro.mpc.faults.FaultInjector`).
    faults: FaultInjector | None = None
    #: Two-level search groups: None | ``"auto"`` | int.
    try_groups: int | str | None = None
    collectives: CollectiveConfig | None = None
    #: Processes-world wire: None (backend default, shm) | ``"shm"`` |
    #: ``"pipe"``.  Only the ``"processes"`` backend has a wire to pick.
    transport: str | None = None

    def __post_init__(self) -> None:
        check_instrument(self.instrument)
        if self.kernels is not None:
            kernel_config.resolve(self.kernels)  # validate eagerly
        if self.verify not in VERIFY_LEVELS:
            raise ValueError(
                f"verify {self.verify!r} not in {VERIFY_LEVELS}"
            )
        if self.checkpoint != "off":
            check_policy(self.checkpoint)
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0: {self.max_restarts}"
            )
        _check_try_groups(self.try_groups)
        if self.transport is not None and self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport {self.transport!r} not in {TRANSPORTS}"
            )

    def merged(self, **overrides) -> "FitConfig":
        """A copy with the non-:data:`_UNSET` overrides applied."""
        given = {k: v for k, v in overrides.items() if v is not _UNSET}
        return dc_replace(self, **given) if given else self


def _build_options(options: FitConfig | None, **bare) -> FitConfig:
    """Resolve an ``options=`` object vs. bare keywords (exactly one)."""
    given = {k: v for k, v in bare.items() if v is not _UNSET}
    if options is not None:
        if not isinstance(options, FitConfig):
            raise TypeError(
                f"options must be a FitConfig, got {type(options).__name__}"
            )
        if given:
            raise ValueError(
                "pass either options= or bare fit keywords, not both "
                f"(got options= and {sorted(given)})"
            )
        return options
    return FitConfig(**given)


def _fit_options(base: FitConfig, options: FitConfig | None, **bare) -> FitConfig:
    """Resolve fit-time options against the constructor-time ``base``.

    ``options=`` replaces the base wholesale; bare keywords override
    just the fields they name; both together is an error.
    """
    given = {k: v for k, v in bare.items() if v is not _UNSET}
    if options is not None:
        if not isinstance(options, FitConfig):
            raise TypeError(
                f"options must be a FitConfig, got {type(options).__name__}"
            )
        if given:
            raise ValueError(
                "pass either options= or bare fit keywords, not both "
                f"(got options= and {sorted(given)})"
            )
        return options
    return base.merged(**bare)


def _check_transport(transport: str | None, backend: str) -> None:
    """``transport`` picks the processes world's wire; other worlds
    have no wire to pick, so setting it there is a config error."""
    if transport is not None and backend != "processes":
        raise ValueError(
            f"transport={transport!r} only applies to the 'processes' "
            f"backend (got backend={backend!r})"
        )


def _check_sequential(opts: FitConfig) -> None:
    """Reject parallel-only options on the sequential class."""
    bad = [
        k for k in ("try_groups", "collectives", "faults", "transport")
        if getattr(opts, k) is not None
    ]
    if bad:
        raise ValueError(
            f"option(s) {', '.join(bad)} are parallel-only "
            "(use PAutoClass)"
        )


def _verified(
    run: Run,
    db: Database,
    *,
    config: SearchConfig,
    spec: ModelSpec | None,
    kernels: str | None,
    allreduce: str,
    verify: str,
) -> Run:
    """Run the conformance shadow fit and attach/enforce its report.

    The shadow is always a *sequential* run over the same seeded
    config.  For a parallel primary it uses the same kernel path —
    isolating the parallelism axis (the paper's claim).  For a
    sequential primary it uses the *opposite* kernel path — the only
    remaining differential axis.  Strict mode raises
    :class:`repro.verify.ConformanceError` with a first-divergence
    report; trace mode only attaches ``run.conformance``.
    """
    import dataclasses as _dc

    from repro.verify.conformance import ConformanceError, compare_traces
    from repro.verify.trace import RunTrace, TraceMeta, capture_trace

    resolved = kernel_config.resolve(kernels)
    primary_meta = TraceMeta(
        case="", world=run.backend, size=run.n_processors,
        kernels=resolved, allreduce=allreduce,
    )
    primary = RunTrace.from_run(run, db, primary_meta)
    if run.backend == "sequential":
        shadow_kernels = "reference" if resolved == "fused" else "fused"
    else:
        shadow_kernels = resolved
    shadow = capture_trace(
        db,
        _dc.asdict(config),
        world="sequential",
        size=1,
        kernels=shadow_kernels,
        allreduce=allreduce,
        instrument="full" if run.instrument == "full" else "off",
        spec=spec,
    )
    report = compare_traces(shadow, primary)
    run = dc_replace(run, conformance=report)
    if verify == "strict" and not report.ok:
        raise ConformanceError(report)
    return run


class NotFittedError(RuntimeError):
    """Results were requested from a model whose ``fit`` has not run.

    Subclasses :class:`RuntimeError` so pre-existing ``except
    RuntimeError`` handlers keep working.
    """


@dataclass(frozen=True)
class Run:
    """Outcome of one ``fit`` on any backend (including sequential).

    Carries the classification search :attr:`result`, the run's
    observability :attr:`record` (``None`` unless fitted with
    ``instrument="phases"`` or ``"full"``), and backend metadata.  The
    same object shape is returned by every backend — wall-clocked real
    worlds and the virtual-time simulator differ only in the record's
    ``clock`` field.
    """

    result: SearchResult
    backend: str
    n_processors: int
    instrument: str = "off"
    #: Merged per-rank observability record (see :mod:`repro.obs`).
    record: RunRecord | None = None
    #: Simulated elapsed seconds (``"sim"`` backend only, else None).
    sim_elapsed: float | None = None
    #: Rendered virtual-time schedule (``"sim"`` backend with
    #: ``instrument="full"`` only).
    timeline: str | None = None
    #: How many checkpointed restarts the fit needed (0 = clean run).
    restarts: int = 0
    #: One ``(attempt, backoff_seconds, reason)`` per restart.
    retry_log: tuple = ()
    #: Conformance report of the shadow verification run (``None``
    #: unless fitted with ``verify="trace"`` or ``"strict"``); a
    #: :class:`repro.verify.ConformanceReport`.
    conformance: object | None = None
    #: Kernel path the fit ran under (None = ambient default) —
    #: inference below scores with the same path, so ``predict`` on the
    #: training database reproduces the run's final class map.
    kernels: str | None = None

    @property
    def best(self):
        """The best try of the search (delegates to ``result.best``)."""
        return self.result.best

    def summary(self) -> str:
        """One-line-per-try search summary (delegates to the result)."""
        return self.result.summary()

    def report(self) -> str:
        """Paper-style per-rank phase/communication breakdown.

        Requires the run to have been instrumented.
        """
        if self.record is None:
            raise ValueError(
                "run was not instrumented; fit with instrument='phases' "
                "or instrument='full' to collect a record"
            )
        from repro.obs.report import render_run

        return render_run(self.record)

    # -- inference (delegates to repro.serve.scoring) ---------------------

    def predict(self, db: Database) -> np.ndarray:
        """Hard class assignment per item, ``(n_items,)`` int64."""
        from repro.serve import scoring

        return scoring.predict(
            db, self.best.classification, kernels=self.kernels
        )

    def predict_proba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` posterior membership probabilities."""
        from repro.serve import scoring

        return scoring.predict_proba(
            db, self.best.classification, kernels=self.kernels
        )

    def predict_logproba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` log posterior membership."""
        from repro.serve import scoring

        return scoring.predict_logproba(
            db, self.best.classification, kernels=self.kernels
        )

    def score_samples(self, db: Database) -> np.ndarray:
        """Per-item log evidence ``log p(x_i)``, ``(n_items,)``."""
        from repro.serve import scoring

        return scoring.score_samples(
            db, self.best.classification, kernels=self.kernels
        )

    def score(self, db: Database) -> float:
        """Mean per-item log evidence (sklearn's mixture ``score``)."""
        from repro.serve import scoring

        return scoring.score(
            db, self.best.classification, kernels=self.kernels
        )

    def fitted(self, db: Database | None = None, *, summary=None):
        """Export the servable :class:`repro.serve.FittedModel`.

        Needs the training database (or its precomputed
        :class:`~repro.models.summary.DataSummary`) because priors are
        summary-relative.
        """
        from repro.serve.artifact import FittedModel

        return FittedModel.from_run(self, db, summary=summary)


#: Backwards-compatible alias — PR 1's parallel-fit result type is now
#: the unified :class:`Run`.
PAutoClassRun = Run

#: A backend runner executes one fit:
#: ``runner(model: PAutoClass, db: Database, spec: ModelSpec) -> Run``.
BackendRunner = Callable[["PAutoClass", Database, ModelSpec], Run]

#: Registry of SPMD backends, name -> runner.  Iteration order is
#: registration order; membership (``name in BACKENDS``) checks names.
BACKENDS: dict[str, BackendRunner] = {}


def register_backend(name: str) -> Callable[[BackendRunner], BackendRunner]:
    """Register a :class:`PAutoClass` backend runner under ``name``.

    Used as a decorator::

        @register_backend("mpi")
        def _mpi_backend(model, db, spec) -> Run: ...

    Registering an existing name replaces it (lets tests substitute
    instrumented doubles).
    """

    def decorate(fn: BackendRunner) -> BackendRunner:
        BACKENDS[name] = fn
        return fn

    return decorate


def _assemble_run(
    model: PAutoClass,
    backend: str,
    pairs: list,
    *,
    sim_elapsed: float | None = None,
    timeline: str | None = None,
) -> Run:
    """Merge per-rank ``(result, rank_record)`` pairs into one Run."""
    records = [rec for _result, rec in pairs]
    return Run(
        result=pairs[0][0],
        backend=backend,
        n_processors=model.n_processors,
        instrument=model.instrument,
        record=build_run_record(
            backend, model.n_processors, model.instrument, records
        ),
        sim_elapsed=sim_elapsed,
        timeline=timeline,
        kernels=model.kernels,
    )


@register_backend("serial")
def _serial_backend(model: PAutoClass, db: Database, spec: ModelSpec) -> Run:
    if model.n_processors != 1:
        raise ValueError("serial backend supports exactly 1 processor")
    comm = SerialComm(model.collectives)
    pair = recorded_pautoclass(
        comm, db, model.config, spec, instrument=model.instrument,
        kernels=model.kernels, ckpt=model._ckpt_spec, faults=model._faults,
        try_groups=model.try_groups,
    )
    return _assemble_run(model, "serial", [pair])


@register_backend("threads")
def _threads_backend(model: PAutoClass, db: Database, spec: ModelSpec) -> Run:
    pairs = run_spmd_threads(
        recorded_pautoclass,
        model.n_processors,
        db,
        model.config,
        spec,
        collectives=model.collectives,
        instrument=model.instrument,
        kernels=model.kernels,
        ckpt=model._ckpt_spec,
        faults=model._faults,
        try_groups=model.try_groups,
    )
    return _assemble_run(model, "threads", pairs)


@register_backend("processes")
def _processes_backend(
    model: PAutoClass, db: Database, spec: ModelSpec
) -> Run:
    # Each forked rank sends its (result, RankRecord) pair back over its
    # result pipe; the parent merges the records — cross-process record
    # collection with no shared memory.
    pairs = run_spmd_processes(
        recorded_pautoclass,
        model.n_processors,
        db,
        model.config,
        spec,
        collectives=model.collectives,
        instrument=model.instrument,
        kernels=model.kernels,
        ckpt=model._ckpt_spec,
        faults=model._faults,
        try_groups=model.try_groups,
        transport=model.transport or "shm",
    )
    return _assemble_run(model, "processes", pairs)


@register_backend("sim")
def _sim_backend(model: PAutoClass, db: Database, spec: ModelSpec) -> Run:
    from repro.harness.runner import calibrated_machine
    from repro.simnet.simworld import run_spmd_sim
    from repro.simnet.trace import Tracer, render_timeline

    tracer = Tracer() if model.instrument == "full" else None
    sim = run_spmd_sim(
        recorded_pautoclass,
        model.n_processors,
        calibrated_machine(model.n_processors),
        db,
        model.config,
        spec,
        collectives=model.collectives,
        compute_mode="counted",
        tracer=tracer,
        instrument=model.instrument,
        kernels=model.kernels,
        ckpt=model._ckpt_spec,
        faults=model._faults,
        try_groups=model.try_groups,
    )
    timeline = None
    if tracer is not None:
        timeline = tracer.summary() + "\n" + render_timeline(tracer)
    return _assemble_run(
        model, "sim", sim.results, sim_elapsed=sim.elapsed, timeline=timeline
    )


class AutoClass:
    """Sequential AutoClass: Bayesian unsupervised classification.

    Example::

        from repro import AutoClass, make_paper_database
        db = make_paper_database(5000, seed=0)
        ac = AutoClass(start_j_list=(2, 4, 8), max_n_tries=3, seed=7)
        run = ac.fit(db)
        print(run.summary())
        print(ac.report())
        labels = ac.predict(db)

    Pass ``instrument="phases"`` (timers only) or ``"full"`` (timers +
    per-cycle telemetry) to collect an observability record; it is
    available as ``run.record`` and rendered by ``run.report()``.

    All fit-time options may also be passed as one validated
    :class:`FitConfig` via ``options=`` (to the constructor or to
    ``fit``); the bare keywords build the same object.
    """

    def __init__(
        self,
        spec: ModelSpec | None = None,
        *,
        options: FitConfig | None = None,
        instrument: str = _UNSET,
        kernels: str | None = _UNSET,
        **config,
    ) -> None:
        self.options = _build_options(
            options, instrument=instrument, kernels=kernels
        )
        _check_sequential(self.options)
        self.spec = spec
        self._init_method_defaulted = "init_method" not in config
        self.config = SearchConfig(**config)
        self.result_: SearchResult | None = None
        self.run_: Run | None = None
        self._db: Database | None = None
        #: Effective options of the fit in flight (fit-time overrides).
        self._active_options: FitConfig | None = None

    @property
    def instrument(self) -> str:
        return (self._active_options or self.options).instrument

    @property
    def kernels(self) -> str | None:
        return (self._active_options or self.options).kernels

    # -- fitting ---------------------------------------------------------

    def fit(
        self,
        db: Database,
        *,
        options: FitConfig | None = None,
        checkpoint: str = _UNSET,
        checkpoint_dir: str | Path | None = _UNSET,
        resume: bool = _UNSET,
        max_restarts: int = _UNSET,
        verify: str = _UNSET,
    ) -> Run:
        """Run the BIG_LOOP search; returns (and stores) the :class:`Run`.

        ``checkpoint``/``checkpoint_dir`` make the search durable (see
        :mod:`repro.ckpt`): state is persisted at try boundaries
        (``"per_try"``) or after every EM cycle (``"per_cycle"``), and a
        rerun with ``resume=True`` picks up where the file left off —
        bit-identically.  ``max_restarts`` retries a failed search from
        its checkpoint with exponential backoff.

        ``verify`` runs a shadow fit on the *opposite* kernel path and
        compares the two searches under the kernel tolerance
        (:mod:`repro.verify`): ``"trace"`` attaches the report as
        ``run.conformance``, ``"strict"`` additionally raises
        :class:`repro.verify.ConformanceError` on any divergence.

        Any constructor-time option may be overridden per fit — by the
        bare keywords above, or wholesale with ``options=``.
        """
        opts = _fit_options(
            self.options, options,
            checkpoint=checkpoint, checkpoint_dir=checkpoint_dir,
            resume=resume, max_restarts=max_restarts, verify=verify,
        )
        _check_sequential(opts)
        config = _streamed_fallback_config(
            self.config, db, self._init_method_defaulted
        )
        check_verify(opts.verify, config)
        check_streamed_verify(db, opts.verify)
        ckpt_spec = _resolve_checkpoint(
            opts.checkpoint, opts.checkpoint_dir, opts.resume
        )
        if opts.max_restarts and ckpt_spec is None:
            raise ValueError("max_restarts needs checkpointing enabled")
        attempt = 0
        retry_log: list[tuple[int, float, str]] = []
        self._active_options = opts
        try:
            while True:
                spec = ckpt_spec
                if spec is not None and attempt > 0:
                    spec = dc_replace(spec, resume=True)  # retries must resume
                checkpointer = None if spec is None else spec.build(0)
                try:
                    record = None
                    if opts.instrument == "off":
                        result = run_search(
                            db, config, self.spec,
                            checkpointer=checkpointer, kernels=opts.kernels,
                        )
                    else:
                        rec = Recorder(level=opts.instrument)
                        with recording(rec):
                            result = run_search(
                                db, config, self.spec,
                                checkpointer=checkpointer,
                                kernels=opts.kernels,
                            )
                        record = build_run_record(
                            "sequential", 1, opts.instrument,
                            [rec.to_rank_record()],
                        )
                    break
                except RuntimeError as exc:
                    attempt += 1
                    if attempt > opts.max_restarts:
                        raise
                    backoff = restart_backoff_seconds(attempt)
                    reason = str(exc).splitlines()[0]
                    retry_log.append((attempt, backoff, reason))
                    logger.warning(
                        "fit attempt %d failed (%s); restarting from "
                        "checkpoint in %.3gs", attempt, exc, backoff,
                    )
                    time.sleep(backoff)
        finally:
            self._active_options = None
        run = Run(
            result=result,
            backend="sequential",
            n_processors=1,
            instrument=opts.instrument,
            record=record,
            restarts=len(retry_log),
            retry_log=tuple(retry_log),
            kernels=opts.kernels,
        )
        _surface_restarts(run)
        if opts.verify != "off":
            # After the retry loop on purpose: a ConformanceError is a
            # *finding*, not a transient failure to restart through.
            run = _verified(
                run, db, config=config, spec=self.spec,
                kernels=opts.kernels, allreduce="recursive_doubling",
                verify=opts.verify,
            )
        self.result_ = result
        self.run_ = run
        self._db = db
        return self.run_

    @property
    def best_(self) -> Classification:
        """The best classification found by :meth:`fit`."""
        if self.result_ is None:
            raise NotFittedError("call fit() first")
        return self.result_.best.classification

    # -- inference (delegates to the Run's unified methods) ---------------

    def _fitted_run(self) -> Run:
        if self.run_ is None:
            raise NotFittedError("call fit() first")
        return self.run_

    def predict(self, db: Database) -> np.ndarray:
        """Hard class assignment per item, ``(n_items,)`` int64."""
        return self._fitted_run().predict(db)

    def predict_proba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` class membership probabilities."""
        return self._fitted_run().predict_proba(db)

    def predict_logproba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` log posterior membership."""
        return self._fitted_run().predict_logproba(db)

    def score(self, db: Database) -> float:
        """Mean per-item log evidence (sklearn's mixture ``score``)."""
        return self._fitted_run().score(db)

    def fitted(self, db: Database | None = None, *, summary=None):
        """Servable :class:`repro.serve.FittedModel` of the last fit.

        Defaults to the training database the model was fitted on.
        """
        run = self._fitted_run()
        if db is None and summary is None:
            db = self._db
        return run.fitted(db, summary=summary)

    def report(self) -> str:
        """AutoClass-style report of the best classification."""
        if self._db is None:
            raise NotFittedError("call fit() first")
        if is_streamable(self._db):
            raise ValueError(
                "the classification report recomputes full-database "
                "memberships in memory and cannot stream a "
                "ShardedDatabase; pass materialize()d data to fit() if "
                "the report is needed"
            )
        return classification_report(self._db, self.best_)


class PAutoClass:
    """P-AutoClass: the same classification, executed SPMD.

    Example::

        from repro import PAutoClass, make_paper_database
        db = make_paper_database(5000, seed=0)
        pac = PAutoClass(n_processors=8, backend="sim",
                         start_j_list=(2, 4, 8), max_n_tries=3, seed=7,
                         instrument="phases")
        run = pac.fit(db)
        print(run.sim_elapsed, "simulated seconds on", run.n_processors, "procs")
        print(run.report())   # per-rank wts/params/Allreduce breakdown

    ``try_groups`` (None | ``"auto"`` | int) turns on the two-level
    search: the world is split into that many sub-communicator groups
    and BIG_LOOP tries run concurrently across groups, each try
    data-parallel within its group (see :mod:`repro.parallel.psearch`).
    """

    def __init__(
        self,
        n_processors: int = 4,
        backend: str = "threads",
        spec: ModelSpec | None = None,
        collectives: CollectiveConfig | None = None,
        instrument: str = _UNSET,
        kernels: str | None = _UNSET,
        trace: bool | None = None,
        try_groups: int | str | None = _UNSET,
        transport: str | None = _UNSET,
        *,
        options: FitConfig | None = None,
        **config,
    ) -> None:
        if trace is not None:
            raise TypeError(
                "PAutoClass(trace=...) was removed; use "
                "instrument='full' (works on every backend and also "
                "produces the sim timeline)"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"backend {backend!r} not in {tuple(BACKENDS)}"
            )
        if n_processors < 1:
            raise ValueError(f"n_processors must be >= 1, got {n_processors}")
        # collectives keeps its historical positional slot; None means
        # unset so it composes with options= like the other keywords.
        self.options = _build_options(
            options,
            instrument=instrument,
            kernels=kernels,
            try_groups=try_groups,
            transport=transport,
            collectives=collectives if collectives is not None else _UNSET,
        )
        _check_try_groups(self.options.try_groups, n_processors)
        _check_transport(self.options.transport, backend)
        self.n_processors = n_processors
        self.backend = backend
        self.spec = spec
        self._init_method_defaulted = "init_method" not in config
        self.config = SearchConfig(**config)
        self.run_: Run | None = None
        self._db: Database | None = None
        #: Effective options of the fit in flight; backend runners read
        #: instrument/kernels/try_groups/collectives off the model
        #: because the runner signature is fixed, and the properties
        #: below surface fit-time overrides to them.
        self._active_options: FitConfig | None = None
        #: Fit-time checkpoint/fault state for the current attempt.
        self._ckpt_spec: CheckpointSpec | None = None
        self._faults = None

    @property
    def instrument(self) -> str:
        return (self._active_options or self.options).instrument

    @property
    def kernels(self) -> str | None:
        return (self._active_options or self.options).kernels

    @property
    def try_groups(self) -> int | str | None:
        return (self._active_options or self.options).try_groups

    @property
    def collectives(self) -> CollectiveConfig | None:
        return (self._active_options or self.options).collectives

    @property
    def transport(self) -> str | None:
        return (self._active_options or self.options).transport

    def fit(
        self,
        db: Database,
        *,
        options: FitConfig | None = None,
        checkpoint: str = _UNSET,
        checkpoint_dir: str | Path | None = _UNSET,
        resume: bool = _UNSET,
        max_restarts: int = _UNSET,
        faults=_UNSET,
        verify: str = _UNSET,
    ) -> Run:
        """Run the SPMD search on the configured backend.

        ``verify`` runs a *sequential* shadow fit over the same seeded
        config and kernel path and compares the two searches under the
        tolerance the run pair resolves to (:mod:`repro.verify`) —
        bitwise for a 1-rank world, the reduction-order bound
        otherwise.  ``"trace"`` attaches the report as
        ``run.conformance``; ``"strict"`` additionally raises
        :class:`repro.verify.ConformanceError` on any divergence, with
        a first-divergence report (cycle, term, max abs/rel error).

        ``checkpoint``/``checkpoint_dir`` enable the rank-0-writes /
        all-ranks-restore checkpoint protocol (:mod:`repro.ckpt`);
        ``max_restarts`` retries a failed world from the checkpoint with
        exponential backoff.  ``faults`` — a
        :class:`repro.mpc.faults.FaultInjector` — injects rank failures
        for testing; injected faults are disarmed on restart (they model
        transient node losses; a persistent fault would defeat any retry
        budget).  Restart bookkeeping is surfaced as ``run.restarts`` /
        ``run.retry_log`` and, when instrumented, as a ``restarts``
        counter plus ``"restart"`` comm events on rank 0's record.

        Any constructor-time option may be overridden per fit — by the
        bare keywords above, or wholesale with ``options=``.
        """
        opts = _fit_options(
            self.options, options,
            checkpoint=checkpoint, checkpoint_dir=checkpoint_dir,
            resume=resume, max_restarts=max_restarts, faults=faults,
            verify=verify,
        )
        _check_try_groups(opts.try_groups, self.n_processors)
        _check_transport(opts.transport, self.backend)
        config = _streamed_fallback_config(
            self.config, db, self._init_method_defaulted
        )
        check_verify(opts.verify, config)
        check_streamed_verify(db, opts.verify)
        ckpt_spec = _resolve_checkpoint(
            opts.checkpoint, opts.checkpoint_dir, opts.resume
        )
        if opts.max_restarts and ckpt_spec is None:
            raise ValueError("max_restarts needs checkpointing enabled")
        spec = self.spec or ModelSpec.default_for(
            db.schema, DataSummary.from_database(db)
        )
        attempt = 0
        retry_log: list[tuple[int, float, str]] = []
        self._active_options = opts
        # Backend runners read the search config off the model; surface
        # the streamed fallback to them for the duration of the fit.
        saved_config, self.config = self.config, config
        try:
            while True:
                self._ckpt_spec = ckpt_spec
                if ckpt_spec is not None and attempt > 0:
                    self._ckpt_spec = dc_replace(ckpt_spec, resume=True)
                self._faults = opts.faults if attempt == 0 else None
                try:
                    run = BACKENDS[self.backend](self, db, spec)
                    break
                except RuntimeError as exc:
                    attempt += 1
                    if attempt > opts.max_restarts:
                        raise
                    backoff = restart_backoff_seconds(attempt)
                    reason = str(exc).splitlines()[0]
                    retry_log.append((attempt, backoff, reason))
                    logger.warning(
                        "SPMD fit attempt %d failed (%s); restarting from "
                        "checkpoint in %.3gs", attempt, exc, backoff,
                    )
                    time.sleep(backoff)
                finally:
                    self._ckpt_spec = None
                    self._faults = None
        finally:
            self.config = saved_config
            self._active_options = None
        if retry_log:
            run = dc_replace(
                run, restarts=len(retry_log), retry_log=tuple(retry_log)
            )
            _surface_restarts(run)
        if opts.verify != "off":
            # After the retry loop on purpose: a ConformanceError is a
            # *finding*, not a transient failure to restart through.
            allreduce = (
                opts.collectives.allreduce
                if opts.collectives is not None
                else CollectiveConfig().allreduce
            )
            run = _verified(
                run, db, config=config, spec=self.spec,
                kernels=opts.kernels, allreduce=allreduce,
                verify=opts.verify,
            )
        self.run_ = run
        self._db = db
        return self.run_

    @property
    def best_(self) -> Classification:
        if self.run_ is None:
            raise NotFittedError("call fit() first")
        return self.run_.result.best.classification

    # -- inference (delegates to the Run's unified methods) ---------------

    def _fitted_run(self) -> Run:
        if self.run_ is None:
            raise NotFittedError("call fit() first")
        return self.run_

    def predict(self, db: Database) -> np.ndarray:
        """Hard class assignment per item, ``(n_items,)`` int64."""
        return self._fitted_run().predict(db)

    def predict_proba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` class membership probabilities."""
        return self._fitted_run().predict_proba(db)

    def predict_logproba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` log posterior membership."""
        return self._fitted_run().predict_logproba(db)

    def score(self, db: Database) -> float:
        """Mean per-item log evidence (sklearn's mixture ``score``)."""
        return self._fitted_run().score(db)

    def fitted(self, db: Database | None = None, *, summary=None):
        """Servable :class:`repro.serve.FittedModel` of the last fit.

        Defaults to the training database the model was fitted on.
        """
        run = self._fitted_run()
        if db is None and summary is None:
            db = self._db
        return run.fitted(db, summary=summary)

    def report(self) -> str:
        if self._db is None:
            raise NotFittedError("call fit() first")
        return classification_report(self._db, self.best_)
