"""High-level user-facing API.

Wraps the engine and the parallel driver behind two small classes:

* :class:`AutoClass` — sequential Bayesian classification of a
  :class:`~repro.data.Database` (fit / predict / report);
* :class:`PAutoClass` — the same interface, executed SPMD on a chosen
  backend: ``"serial"``, ``"threads"``, ``"processes"``, or ``"sim"``
  (the virtual-time CS-2 — also returns the simulated timing).

Both produce identical classifications (a tested invariant); the choice
is about *how* the work runs, which is the paper's whole point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import Database
from repro.engine.classification import Classification
from repro.engine.report import classification_report, membership
from repro.engine.search import SearchConfig, SearchResult, run_search
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import CollectiveConfig
from repro.mpc.procworld import run_spmd_processes
from repro.mpc.serial import SerialComm
from repro.mpc.threadworld import run_spmd_threads
from repro.parallel.driver import run_pautoclass

BACKENDS = ("serial", "threads", "processes", "sim")


class AutoClass:
    """Sequential AutoClass: Bayesian unsupervised classification.

    Example::

        from repro import AutoClass, make_paper_database
        db = make_paper_database(5000, seed=0)
        ac = AutoClass(start_j_list=(2, 4, 8), max_n_tries=3, seed=7)
        result = ac.fit(db)
        print(ac.report())
        labels = ac.predict(db)
    """

    def __init__(self, spec: ModelSpec | None = None, **config) -> None:
        self.spec = spec
        self.config = SearchConfig(**config)
        self.result_: SearchResult | None = None
        self._db: Database | None = None

    # -- fitting ---------------------------------------------------------

    def fit(self, db: Database) -> SearchResult:
        """Run the BIG_LOOP search; returns (and stores) the result."""
        self.result_ = run_search(db, self.config, self.spec)
        self._db = db
        return self.result_

    @property
    def best_(self) -> Classification:
        """The best classification found by :meth:`fit`."""
        if self.result_ is None:
            raise RuntimeError("call fit() first")
        return self.result_.best.classification

    # -- inference --------------------------------------------------------

    def predict_proba(self, db: Database) -> np.ndarray:
        """``(n_items, n_classes)`` class membership probabilities."""
        wts, _ = membership(db, self.best_)
        return wts

    def predict(self, db: Database) -> np.ndarray:
        """Hard class assignment (argmax of the membership weights)."""
        _, hard = membership(db, self.best_)
        return hard

    def report(self) -> str:
        """AutoClass-style report of the best classification."""
        if self._db is None:
            raise RuntimeError("call fit() first")
        return classification_report(self._db, self.best_)


@dataclass(frozen=True)
class PAutoClassRun:
    """Result of a parallel fit: the search result plus run metadata."""

    result: SearchResult
    backend: str
    n_processors: int
    #: Simulated elapsed seconds (``"sim"`` backend only, else None).
    sim_elapsed: float | None = None
    #: Rendered virtual-time schedule (``"sim"`` backend with
    #: ``trace=True`` only).
    timeline: str | None = None


class PAutoClass:
    """P-AutoClass: the same classification, executed SPMD.

    Example::

        from repro import PAutoClass, make_paper_database
        db = make_paper_database(5000, seed=0)
        pac = PAutoClass(n_processors=8, backend="sim",
                         start_j_list=(2, 4, 8), max_n_tries=3, seed=7)
        run = pac.fit(db)
        print(run.sim_elapsed, "simulated seconds on", run.n_processors, "procs")
    """

    def __init__(
        self,
        n_processors: int = 4,
        backend: str = "threads",
        spec: ModelSpec | None = None,
        collectives: CollectiveConfig | None = None,
        trace: bool = False,
        **config,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend {backend!r} not in {BACKENDS}")
        if n_processors < 1:
            raise ValueError(f"n_processors must be >= 1, got {n_processors}")
        if trace and backend != "sim":
            raise ValueError("trace=True needs the 'sim' backend")
        self.n_processors = n_processors
        self.backend = backend
        self.spec = spec
        self.collectives = collectives
        self.trace = trace
        self.config = SearchConfig(**config)
        self.run_: PAutoClassRun | None = None
        self._db: Database | None = None

    def fit(self, db: Database) -> PAutoClassRun:
        """Run the SPMD search on the configured backend."""
        spec = self.spec or ModelSpec.default_for(
            db.schema, DataSummary.from_database(db)
        )
        sim_elapsed: float | None = None
        timeline: str | None = None
        if self.backend == "serial":
            if self.n_processors != 1:
                raise ValueError("serial backend supports exactly 1 processor")
            result = run_pautoclass(
                SerialComm(self.collectives), db, self.config, spec
            )
        elif self.backend == "threads":
            results = run_spmd_threads(
                run_pautoclass,
                self.n_processors,
                db,
                self.config,
                spec,
                collectives=self.collectives,
            )
            result = results[0]
        elif self.backend == "processes":
            results = run_spmd_processes(
                run_pautoclass,
                self.n_processors,
                db,
                self.config,
                spec,
                collectives=self.collectives,
            )
            result = results[0]
        else:  # sim
            from repro.harness.runner import calibrated_machine
            from repro.simnet.simworld import run_spmd_sim
            from repro.simnet.trace import Tracer, render_timeline

            tracer = Tracer() if self.trace else None
            sim = run_spmd_sim(
                run_pautoclass,
                self.n_processors,
                calibrated_machine(self.n_processors),
                db,
                self.config,
                spec,
                collectives=self.collectives,
                compute_mode="counted",
                tracer=tracer,
            )
            result = sim.results[0]
            sim_elapsed = sim.elapsed
            if tracer is not None:
                timeline = tracer.summary() + "\n" + render_timeline(tracer)
        self.run_ = PAutoClassRun(
            result=result,
            backend=self.backend,
            n_processors=self.n_processors,
            sim_elapsed=sim_elapsed,
            timeline=timeline,
        )
        self._db = db
        return self.run_

    @property
    def best_(self) -> Classification:
        if self.run_ is None:
            raise RuntimeError("call fit() first")
        return self.run_.result.best.classification

    def predict_proba(self, db: Database) -> np.ndarray:
        wts, _ = membership(db, self.best_)
        return wts

    def predict(self, db: Database) -> np.ndarray:
        _, hard = membership(db, self.best_)
        return hard

    def report(self) -> str:
        if self._db is None:
            raise RuntimeError("call fit() first")
        return classification_report(self._db, self.best_)
