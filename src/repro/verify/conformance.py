"""Trace comparison: divergences, reports, and ``ConformanceError``.

:func:`compare_traces` walks two :class:`~repro.verify.trace.RunTrace`
objects in lockstep under a :class:`~repro.verify.tolerance.Tolerance`
and produces a :class:`ConformanceReport`.  The comparison is layered
the way a divergence is debugged:

1. **control flow** — try count, requested J, cycle counts, duplicate
   decisions.  These are replicated decisions (deterministic functions
   of the seed and the reduced scores) and must match *exactly* under
   every tolerance; a control-flow mismatch means the runs took
   different paths and nothing downstream is comparable.
2. **per-cycle log-posterior trace** — compared only when both runs
   carry full instrumentation; the first diverging cycle localizes a
   numerical bug to the EM iteration where it was born.
3. **per-try finals** — score, observed log likelihood, ``w_j``,
   ``log_pi``, packed term parameters.
4. **class map** — item assignments under the best classification;
   under a non-bitwise tolerance an argmax flip is forgiven only where
   the item's membership margin is below
   :data:`~repro.verify.tolerance.MARGIN_EPS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.verify.tolerance import (
    BITWISE,
    MARGIN_EPS,
    Tolerance,
    resolve_tolerance,
)
from repro.verify.trace import RunTrace

#: Stop collecting after this many divergences (the first is the one
#: that matters; the count conveys the blast radius).
MAX_DIVERGENCES = 50


@dataclass(frozen=True)
class Divergence:
    """One compared quantity that fell outside the tolerance."""

    field: str  # e.g. "cycle.log_marginal", "try.w_j", "class_map"
    where: str  # human location: "try 1, cycle 7" / "try 0, class 2"
    a: float  # value in the trace under test
    b: float  # value in the reference trace
    abs_err: float
    rel_err: float

    def render(self) -> str:
        return (
            f"{self.field} @ {self.where}: {self.a!r} != {self.b!r} "
            f"(abs={self.abs_err:.3e}, rel={self.rel_err:.3e})"
        )


@dataclass
class ConformanceReport:
    """Outcome of one trace comparison."""

    ref: RunTrace
    test: RunTrace
    tolerance: Tolerance
    divergences: list[Divergence] = field(default_factory=list)
    n_compared: int = 0  # scalar comparisons performed

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def first_divergence(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def render(self) -> str:
        """First-divergence report (the debugging entry point)."""
        head = (
            f"conformance: {self.test.meta.label()} vs "
            f"{self.ref.meta.label()} under {self.tolerance.label} "
            f"(rel={self.tolerance.rel:g}, abs={self.tolerance.abs:g})"
        )
        if self.ok:
            return f"{head}\n  OK — {self.n_compared} values conform"
        lines = [
            head,
            f"  {len(self.divergences)} divergence(s) in "
            f"{self.n_compared} compared values "
            "(all ranks of each run agree internally; rank 0 shown)",
            f"  FIRST: {self.divergences[0].render()}",
        ]
        for d in self.divergences[1:6]:
            lines.append(f"         {d.render()}")
        if len(self.divergences) > 6:
            lines.append(f"         ... {len(self.divergences) - 6} more")
        return "\n".join(lines)


class ConformanceError(RuntimeError):
    """A strict-mode verification found divergences.

    Carries the full :class:`ConformanceReport` as ``.report``; the
    message is the rendered first-divergence report.
    """

    def __init__(self, report: ConformanceReport) -> None:
        super().__init__(report.render())
        self.report = report


def _check(
    rep: ConformanceReport,
    tol: Tolerance,
    field_name: str,
    where: str,
    a: float,
    b: float,
) -> None:
    rep.n_compared += 1
    if tol.allows(a, b):
        return
    if len(rep.divergences) >= MAX_DIVERGENCES:
        return
    abs_err, rel_err = tol.max_err([a], [b])
    rep.divergences.append(
        Divergence(
            field=field_name, where=where, a=float(a), b=float(b),
            abs_err=abs_err, rel_err=rel_err,
        )
    )


def _check_exact(
    rep: ConformanceReport, field_name: str, where: str, a, b
) -> bool:
    rep.n_compared += 1
    if a == b:
        return True
    if len(rep.divergences) < MAX_DIVERGENCES:
        rep.divergences.append(
            Divergence(
                field=field_name, where=where,
                a=float(-1 if a is None else a),
                b=float(-1 if b is None else b),
                abs_err=float("nan"), rel_err=float("nan"),
            )
        )
    return False


def compare_traces(
    ref: RunTrace,
    test: RunTrace,
    tolerance: Tolerance | None = None,
) -> ConformanceReport:
    """Compare ``test`` against the reference ``ref``.

    ``tolerance=None`` resolves the bound from the two traces' metadata
    (see :func:`repro.verify.tolerance.resolve_tolerance`): bitwise
    when the operation sequences coincide, reduction-order / kernel
    bounds where they provably don't.
    """
    tol = tolerance if tolerance is not None else resolve_tolerance(
        test.meta, ref.meta
    )
    rep = ConformanceReport(ref=ref, test=test, tolerance=tol)

    # 1. control flow ------------------------------------------------------
    if not _check_exact(
        rep, "control.n_tries", "search", len(test.tries), len(ref.tries)
    ):
        return rep  # different search shapes: nothing aligns below
    for ta, tb in zip(test.tries, ref.tries):
        where = f"try {tb['try_index']}"
        _check_exact(
            rep, "control.n_classes_requested", where,
            ta["n_classes_requested"], tb["n_classes_requested"],
        )
        _check_exact(rep, "control.n_cycles", where,
                     ta["n_cycles"], tb["n_cycles"])
        _check_exact(rep, "control.duplicate_of", where,
                     ta["duplicate_of"], tb["duplicate_of"])
        _check_exact(rep, "control.converged", where,
                     ta["converged"], tb["converged"])
    if rep.divergences:
        return rep

    # 2. per-cycle trace ---------------------------------------------------
    if test.cycles and ref.cycles:
        if _check_exact(
            rep, "cycle.count", "search", len(test.cycles), len(ref.cycles)
        ):
            for ca, cb in zip(test.cycles, ref.cycles):
                where = f"cycle {cb['index']} (J={cb['n_classes']})"
                _check_exact(rep, "cycle.n_classes", where,
                             ca["n_classes"], cb["n_classes"])
                _check(rep, tol, "cycle.log_marginal", where,
                       ca["log_marginal"], cb["log_marginal"])
                _check(rep, tol, "cycle.w_j_entropy", where,
                       ca["w_j_entropy"], cb["w_j_entropy"])

    # 3. per-try finals ----------------------------------------------------
    for ta, tb in zip(test.tries, ref.tries):
        where = f"try {tb['try_index']}"
        _check(rep, tol, "try.score", where, ta["score"], tb["score"])
        _check(rep, tol, "try.log_lik_obs", where,
               ta["log_lik_obs"], tb["log_lik_obs"])
        for name in ("w_j", "log_pi", "params"):
            va, vb = ta[name], tb[name]
            if not _check_exact(
                rep, f"try.{name}.len", where, len(va), len(vb)
            ):
                continue
            for i, (a, b) in enumerate(zip(va, vb)):
                _check(rep, tol, f"try.{name}", f"{where}, slot {i}", a, b)

    # 4. class map ---------------------------------------------------------
    if _check_exact(
        rep, "class_map.len", "best", len(test.class_map), len(ref.class_map)
    ):
        for i, (a, b) in enumerate(zip(test.class_map, ref.class_map)):
            rep.n_compared += 1
            if a == b:
                continue
            margin = min(test.margins[i], ref.margins[i])
            if tol is not BITWISE and tol.rel > 0.0 and margin < MARGIN_EPS:
                continue  # ambiguous item; argmax decided by last bits
            if len(rep.divergences) < MAX_DIVERGENCES:
                rep.divergences.append(
                    Divergence(
                        field="class_map", where=f"item {i}",
                        a=float(a), b=float(b),
                        abs_err=float(margin), rel_err=float(margin),
                    )
                )
    return rep
