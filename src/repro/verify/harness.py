"""The differential conformance harness and the golden corpus.

``run_case_matrix`` fits one corpus case across the full
{worlds} x {world sizes} x {kernels} x {allreduce variants} matrix and
compares every cell against the sequential reference under the
tolerance the metadata resolves — bitwise wherever the operation
sequence is fixed, reduction-order / kernel bounds where it provably
is not.  This is the machine-checkable form of the paper's claim that
P-AutoClass computes *the same classification* as AutoClass.

The **golden corpus** pins the sequential references themselves: for
each (case, kernels) pair a committed JSON trace + sha256 digest under
``repro/verify/golden/``.  ``check_golden`` recomputes the trace and
fails on digest drift — any change to the E/M hot path that moves a
single bit of the search shows up here before it ships.  Regenerate
deliberately with ``python -m repro.verify --regen`` and commit the
diff (the review of that diff *is* the numerical review).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.verify.conformance import ConformanceReport, compare_traces
from repro.verify.trace import RunTrace, TraceMeta, capture_trace

#: Directory holding the committed golden traces.
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Kernel paths exercised by the matrix.
KERNEL_MODES = ("fused", "reference")

#: Allreduce variants exercised by the matrix.
ALLREDUCE_VARIANTS = ("reduce_bcast", "recursive_doubling", "ring")


def _paper_tiny():
    from repro.data.synth import make_paper_database

    return make_paper_database(120, seed=13)


def _mixed_missing():
    from repro.data.synth import make_mixed_database

    db, _ = make_mixed_database(90, missing_rate=0.2, seed=5)
    return db


@dataclass(frozen=True)
class CorpusCase:
    """One golden-corpus dataset + seeded search configuration."""

    name: str
    make_db: Callable[[], Any]
    config: dict
    #: (world, sizes) cells this case runs in the full matrix.
    worlds: tuple[tuple[str, tuple[int, ...]], ...] = (
        ("serial", (1,)),
        ("threads", (2, 3)),
        ("processes", (2,)),
        ("sim", (2, 3)),
    )
    #: Subset used by ``--quick`` (CI smoke / pre-commit).  The
    #: processes cell rides along so the default shm transport gets a
    #: bitwise conformance check on every smoke run.
    quick_worlds: tuple[tuple[str, tuple[int, ...]], ...] = (
        ("serial", (1,)),
        ("threads", (2, 3)),
        ("processes", (2,)),
    )


CORPUS: tuple[CorpusCase, ...] = (
    CorpusCase(
        name="paper-tiny",
        make_db=_paper_tiny,
        config=dict(
            start_j_list=(2, 3), max_n_tries=2, seed=7, max_cycles=12,
            init_method="seeded",
        ),
    ),
    CorpusCase(
        name="mixed-missing",
        make_db=_mixed_missing,
        config=dict(
            start_j_list=(3,), max_n_tries=1, seed=3, max_cycles=10,
            init_method="sharp",
        ),
    ),
)


def corpus_case(name: str) -> CorpusCase:
    for case in CORPUS:
        if case.name == name:
            return case
    raise KeyError(
        f"unknown corpus case {name!r}; choose from "
        f"{tuple(c.name for c in CORPUS)}"
    )


@dataclass
class MatrixResult:
    """All comparisons of one case's conformance matrix."""

    case: str
    reports: list[ConformanceReport] = field(default_factory=list)
    golden_failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.golden_failures and all(r.ok for r in self.reports)

    @property
    def n_cells(self) -> int:
        return len(self.reports)

    def failures(self) -> list[ConformanceReport]:
        return [r for r in self.reports if not r.ok]

    def render(self) -> str:
        lines = [
            f"case {self.case}: {self.n_cells} cells, "
            f"{len(self.failures())} conformance failure(s), "
            f"{len(self.golden_failures)} golden failure(s)"
        ]
        for msg in self.golden_failures:
            lines.append(f"  GOLDEN: {msg}")
        for rep in self.failures():
            lines.append("  " + rep.render().replace("\n", "\n  "))
        return "\n".join(lines)


def sequential_reference(
    case: CorpusCase, kernels: str, db=None
) -> RunTrace:
    """The sequential trace every matrix cell is compared against."""
    if db is None:
        db = case.make_db()
    return capture_trace(
        db, case.config, world="sequential", size=1, kernels=kernels,
        allreduce="recursive_doubling", case=case.name,
    )


def run_case_matrix(
    case: CorpusCase,
    *,
    quick: bool = False,
    check_golden: bool = True,
    golden_dir: Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> MatrixResult:
    """Fit the whole matrix for one case and compare every cell.

    Every cell is compared against the sequential reference *of its own
    kernel mode* (isolating the parallelism axis) and, additionally,
    the fused reference is compared against the reference-kernel
    reference (isolating the kernel axis).  With ``check_golden`` the
    sequential references are also checked against the committed
    digests.
    """
    db = case.make_db()
    out = MatrixResult(case=case.name)
    say = progress or (lambda _msg: None)

    refs: dict[str, RunTrace] = {}
    for kernels in KERNEL_MODES:
        say(f"[{case.name}] sequential reference, kernels={kernels}")
        refs[kernels] = sequential_reference(case, kernels, db=db)
        if check_golden:
            msg = _check_one_golden(case, kernels, refs[kernels], golden_dir)
            if msg is not None:
                out.golden_failures.append(msg)

    # the kernel axis, isolated: fused vs reference, sequentially
    out.reports.append(compare_traces(refs["reference"], refs["fused"]))

    worlds = case.quick_worlds if quick else case.worlds
    variants = ALLREDUCE_VARIANTS[:2] if quick else ALLREDUCE_VARIANTS
    for world, sizes in worlds:
        for size in sizes:
            for kernels in KERNEL_MODES:
                for allreduce in variants:
                    say(
                        f"[{case.name}] {world} P={size} kernels={kernels} "
                        f"allreduce={allreduce}"
                    )
                    trace = capture_trace(
                        db, case.config, world=world, size=size,
                        kernels=kernels, allreduce=allreduce, case=case.name,
                    )
                    out.reports.append(compare_traces(refs[kernels], trace))
    return out


# -- golden corpus ---------------------------------------------------------

def golden_path(case_name: str, kernels: str, golden_dir: Path | None = None
                ) -> Path:
    base = golden_dir if golden_dir is not None else GOLDEN_DIR
    return Path(base) / f"{case_name}-{kernels}.json"


def write_golden(
    case: CorpusCase, kernels: str, golden_dir: Path | None = None
) -> Path:
    """(Re)generate one golden file from a fresh sequential run."""
    trace = sequential_reference(case, kernels)
    path = golden_path(case.name, kernels, golden_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"digest": trace.digest(), "trace": trace.to_dict()}
    path.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    return path


def load_golden(
    case_name: str, kernels: str, golden_dir: Path | None = None
) -> tuple[str, RunTrace]:
    """``(digest, trace)`` from a committed golden file."""
    path = golden_path(case_name, kernels, golden_dir)
    if not path.exists():
        raise FileNotFoundError(
            f"no golden trace at {path}; generate with "
            "`python -m repro.verify --regen`"
        )
    payload = json.loads(path.read_text())
    trace = RunTrace.from_dict(payload["trace"])
    stored = str(payload["digest"])
    actual = trace.digest()
    if stored != actual:
        raise ValueError(
            f"golden file {path} is internally inconsistent: stored "
            f"digest {stored[:12]}… != recomputed {actual[:12]}… "
            "(hand-edited?); regenerate with `python -m repro.verify "
            "--regen`"
        )
    return stored, trace


def _check_one_golden(
    case: CorpusCase,
    kernels: str,
    fresh: RunTrace,
    golden_dir: Path | None,
) -> str | None:
    """None when the fresh trace matches the committed golden, else a
    failure message (digest drift = the build-failing condition)."""
    try:
        stored_digest, stored_trace = load_golden(
            case.name, kernels, golden_dir
        )
    except FileNotFoundError as exc:
        return str(exc)
    except ValueError as exc:
        return str(exc)
    if fresh.digest() == stored_digest:
        return None
    # Digest drift: diagnose with a value-level compare so the failure
    # message says *where* the numbers moved, not just that they did.
    rep = compare_traces(stored_trace, fresh)
    detail = (
        rep.render()
        if not rep.ok
        else "no value-level divergence (serialization-level drift)"
    )
    return (
        f"digest drift for case={case.name} kernels={kernels}: "
        f"committed {stored_digest[:12]}… != fresh "
        f"{fresh.digest()[:12]}…\n{detail}\n"
        "If the change is intentional, regenerate with "
        "`python -m repro.verify --regen` and commit the diff."
    )


def regen_golden(golden_dir: Path | None = None,
                 progress: Callable[[str], None] | None = None) -> list[Path]:
    say = progress or (lambda _msg: None)
    paths = []
    for case in CORPUS:
        for kernels in KERNEL_MODES:
            say(f"regen {case.name} kernels={kernels}")
            paths.append(write_golden(case, kernels, golden_dir))
    return paths


def run_full_matrix(
    *,
    quick: bool = False,
    check_golden: bool = True,
    golden_dir: Path | None = None,
    cases: tuple[str, ...] | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[MatrixResult]:
    selected = (
        CORPUS
        if cases is None
        else tuple(corpus_case(name) for name in cases)
    )
    return [
        run_case_matrix(
            case, quick=quick, check_golden=check_golden,
            golden_dir=golden_dir, progress=progress,
        )
        for case in selected
    ]
