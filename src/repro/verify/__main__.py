"""CLI entry point: ``python -m repro.verify``.

Default: run the full conformance matrix over the golden corpus and
exit non-zero on any divergence or golden-digest drift.

Flags:

* ``--regen``         regenerate the committed golden traces (then run
                      nothing; commit the diff);
* ``--quick``         the CI-smoke subset of the matrix;
* ``--case NAME``     restrict to one corpus case (repeatable);
* ``--no-golden``     skip the digest check (pure differential run);
* ``--golden-dir``    use an alternate golden directory (tests).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.verify.harness import CORPUS, regen_golden, run_full_matrix


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="cross-backend conformance matrix + golden corpus",
    )
    parser.add_argument(
        "--regen", action="store_true",
        help="regenerate the golden traces and exit",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run the reduced CI-smoke matrix",
    )
    parser.add_argument(
        "--case", action="append", default=None,
        choices=[c.name for c in CORPUS],
        help="restrict to one corpus case (repeatable)",
    )
    parser.add_argument(
        "--no-golden", action="store_true",
        help="skip the committed-digest check",
    )
    parser.add_argument(
        "--golden-dir", type=Path, default=None,
        help="alternate golden directory (default: the committed one)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print every matrix cell as it runs",
    )
    args = parser.parse_args(argv)

    say = print if args.verbose else (lambda _msg: None)
    started = time.perf_counter()
    if args.regen:
        for path in regen_golden(golden_dir=args.golden_dir, progress=say):
            print(f"wrote {path}")
        print(
            f"golden corpus regenerated in "
            f"{time.perf_counter() - started:.1f}s — review and commit "
            "the diff"
        )
        return 0

    results = run_full_matrix(
        quick=args.quick,
        check_golden=not args.no_golden,
        golden_dir=args.golden_dir,
        cases=tuple(args.case) if args.case else None,
        progress=say,
    )
    ok = all(r.ok for r in results)
    for result in results:
        print(result.render())
    n_cells = sum(r.n_cells for r in results)
    print(
        f"conformance: {n_cells} cells over {len(results)} case(s) in "
        f"{time.perf_counter() - started:.1f}s -> "
        f"{'OK' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
