"""Strict conformance of overlapped vs blocking streamed fits.

The nonblocking hot path (:mod:`repro.mpc.icollectives` +
``CollectiveConfig(overlap=True)``) promises that overlap changes *when*
reduction rounds run, never *what* they compute.  This module makes
that promise machine-checkable the same way the cross-backend matrix
does: fit the same sharded database twice on the same world — once
blocking, once overlapped — extract both :class:`~repro.verify.trace.
RunTrace` footprints, and hold them to the **bitwise** tolerance.

This is deliberately separate from ``fit(verify=...)``: the in-fit
shadow run replays the search through the in-memory harness and is
refused for streamed data (see ``repro.api.check_streamed_verify``).
The overlap gate needs no in-memory replay — both arms stream — so it
lives here and is exercised by ``tests/verify/test_overlap_conformance``
across all four worlds.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.verify.conformance import (
    ConformanceError,
    ConformanceReport,
    compare_traces,
)
from repro.verify.tolerance import BITWISE
from repro.verify.trace import RunTrace, TraceMeta


def content_digest(trace: RunTrace) -> str:
    """sha256 of a trace's *numbers*, metadata excluded.

    :meth:`RunTrace.digest` covers the metadata too, so two arms that
    differ only in their (intentionally different) ``allreduce`` label
    would never share it.  This digest is the bitwise-equality check on
    everything actually computed: cycles, tries, class map, margins.
    """
    d = trace.to_dict()
    del d["meta"]
    payload = json.dumps(d, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def capture_streamed_trace(
    sdb,
    db,
    config: dict[str, Any],
    *,
    world: str,
    size: int,
    overlap: bool,
    kernels: str = "fused",
    allreduce: str = "recursive_doubling",
    segments: int = 1,
    case: str = "",
    instrument: str = "full",
) -> RunTrace:
    """Fit ``sdb`` once on ``(world, size)`` and extract its trace.

    ``db`` is the in-memory database ``sdb`` shards — the class map
    (trace layer 4) scores every item's membership, which needs the
    materialized data; the fit itself streams.
    """
    from repro.api import PAutoClass
    from repro.mpc.api import CollectiveConfig

    meta = TraceMeta(
        case=case, world=world, size=size, kernels=kernels,
        allreduce=f"{allreduce}+overlap" if overlap else allreduce,
    )
    model = PAutoClass(
        n_processors=size,
        backend=world,
        collectives=CollectiveConfig(
            allreduce=allreduce, overlap=overlap, segments=segments
        ),
        instrument=instrument,
        kernels=kernels,
        **config,
    )
    run = model.fit(sdb)
    return RunTrace.from_run(run, db, meta)


def check_overlap_conformance(
    sdb,
    db,
    config: dict[str, Any],
    *,
    world: str,
    size: int,
    verify: str = "strict",
    kernels: str = "fused",
    allreduce: str = "recursive_doubling",
    segments: int = 1,
    instrument: str = "full",
) -> ConformanceReport:
    """Fit blocking and overlapped streamed arms; compare bitwise.

    ``verify="strict"`` raises :class:`~repro.verify.ConformanceError`
    on the first diverging bit (the same contract as
    ``fit(verify="strict")``); ``"trace"`` only returns the report.
    The arms run under the identical seeded ``config``, so the traces
    must be digest-equal — overlap reorders rounds in time but replays
    the blocking schedule's exact combine association.
    """
    blocking = capture_streamed_trace(
        sdb, db, config, world=world, size=size, overlap=False,
        kernels=kernels, allreduce=allreduce, instrument=instrument,
    )
    overlapped = capture_streamed_trace(
        sdb, db, config, world=world, size=size, overlap=True,
        kernels=kernels, allreduce=allreduce, segments=segments,
        instrument=instrument,
    )
    report = compare_traces(blocking, overlapped, tolerance=BITWISE)
    if verify == "strict":
        if not report.ok:
            raise ConformanceError(report)
        # Belt-and-braces: the value-level walk passed, so the content
        # digests must agree too; a mismatch here means serialization
        # drift (a field the walk does not compare), still a failure.
        if content_digest(blocking) != content_digest(overlapped):
            raise ConformanceError(report)
    return report
