"""``repro.verify`` — cross-backend conformance + golden regression.

The subsystem that makes the paper's central claim machine-checkable:
P-AutoClass on P ranks computes *the same classification* sequential
AutoClass does, across every world (serial / threads / processes /
sim), kernel path (fused / reference), and allreduce variant
(reduce_bcast / recursive_doubling / ring).

Three layers:

* :mod:`repro.verify.tolerance` — the explicit tolerance model
  (bitwise where the operation sequence is fixed, bounded
  reduction-order / kernel tolerances where it provably is not, with
  allreduce-order compatibility *measured*, not assumed);
* :mod:`repro.verify.trace` / :mod:`repro.verify.conformance` — run
  traces and their lockstep comparison, producing first-divergence
  reports (:class:`ConformanceReport`) or raising
  :class:`ConformanceError` in strict mode;
* :mod:`repro.verify.harness` — the differential matrix over the
  golden corpus, regenerable via ``python -m repro.verify --regen``.

:mod:`repro.verify.overlap` extends the same strict gate to the
nonblocking hot path: an overlapped streamed fit must be bitwise
(digest-) equal to its blocking twin on every world.

``AutoClass.fit`` / ``PAutoClass.fit`` accept ``verify="off" | "trace"
| "strict"`` to run a shadow reference fit and attach (or enforce) a
conformance report on every user-level run.
"""

from repro.verify.conformance import (
    ConformanceError,
    ConformanceReport,
    Divergence,
    compare_traces,
)
from repro.verify.harness import (
    ALLREDUCE_VARIANTS,
    CORPUS,
    CorpusCase,
    MatrixResult,
    corpus_case,
    load_golden,
    regen_golden,
    run_case_matrix,
    run_full_matrix,
    write_golden,
)
from repro.verify.overlap import (
    capture_streamed_trace,
    check_overlap_conformance,
    content_digest,
)
from repro.verify.tolerance import (
    BITWISE,
    KERNEL,
    MARGIN_EPS,
    REDUCTION_ORDER,
    Tolerance,
    probe_allreduce_compatible,
    resolve_tolerance,
)
from repro.verify.trace import RunTrace, TraceMeta, capture_trace

__all__ = [
    "ALLREDUCE_VARIANTS",
    "BITWISE",
    "CORPUS",
    "ConformanceError",
    "ConformanceReport",
    "CorpusCase",
    "Divergence",
    "KERNEL",
    "MARGIN_EPS",
    "MatrixResult",
    "REDUCTION_ORDER",
    "RunTrace",
    "Tolerance",
    "TraceMeta",
    "capture_streamed_trace",
    "capture_trace",
    "check_overlap_conformance",
    "compare_traces",
    "content_digest",
    "corpus_case",
    "load_golden",
    "probe_allreduce_compatible",
    "regen_golden",
    "resolve_tolerance",
    "run_case_matrix",
    "run_full_matrix",
    "write_golden",
]
