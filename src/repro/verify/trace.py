"""Run traces: everything conformance compares, in plain data.

A :class:`RunTrace` is the comparable footprint of one fit:

* the **control flow** of the BIG_LOOP (tries, requested J, cycle
  counts, duplicate decisions) — replicated decisions, compared
  exactly on every axis;
* the **per-cycle log-posterior trace** (``instrument="full"`` runs
  only) — the earliest signal of a numerical divergence, localizing it
  to the cycle where it first appears;
* the **final numbers** per try: Cheeseman–Stutz score, observed-data
  log likelihood, class weights ``w_j``, mixture ``log_pi``, and the
  packed per-term parameter vectors (exactly what the second Allreduce
  cut point communicates);
* the **class map** of the best classification plus each item's
  top-1/top-2 membership margin, so a compare can distinguish a real
  assignment change from an argmax flip on a genuinely ambiguous item.

Traces serialize to canonical JSON (sorted keys, ``repr``-exact
floats) and carry a sha256 digest of that serialization — the golden
corpus stores and CI re-checks these digests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Trace schema version (bump on incompatible change; golden files
#: with a different version are rejected, not silently compared).
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceMeta:
    """Where a trace came from — the axes the tolerance model reads."""

    case: str  # corpus case name ("" for ad-hoc traces)
    world: str  # "sequential" | "serial" | "threads" | "processes" | "sim"
    size: int  # world size (1 for sequential)
    kernels: str  # "fused" | "reference"
    allreduce: str  # collective variant name

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TraceMeta":
        return cls(
            case=str(d["case"]),
            world=str(d["world"]),
            size=int(d["size"]),
            kernels=str(d["kernels"]),
            allreduce=str(d["allreduce"]),
        )

    def label(self) -> str:
        return (
            f"{self.world}[P={self.size}] kernels={self.kernels} "
            f"allreduce={self.allreduce}"
        )


@dataclass
class RunTrace:
    """The comparable footprint of one fit (see module docstring)."""

    meta: TraceMeta
    #: Per-cycle telemetry: one ``{index, n_classes, log_marginal,
    #: w_j_entropy}`` dict per EM cycle, in execution order.  Empty for
    #: runs not instrumented at ``"full"``.
    cycles: list[dict[str, Any]] = field(default_factory=list)
    #: Per-try finals: ``{try_index, n_classes_requested, n_cycles,
    #: converged, duplicate_of, score, log_lik_obs, w_j, log_pi,
    #: params}``.
    tries: list[dict[str, Any]] = field(default_factory=list)
    #: Hard assignment of every item under the best classification.
    class_map: list[int] = field(default_factory=list)
    #: Top-1 minus top-2 membership probability per item.
    margins: list[float] = field(default_factory=list)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_run(cls, run, db, meta: TraceMeta) -> "RunTrace":
        """Extract a trace from a fitted :class:`repro.api.Run`.

        A try-parallel run (``try_groups > 1``) contributes no per-cycle
        stream: rank 0's cycle telemetry covers only its own group's
        tries, so it is not a whole-search trace.  Everything global —
        per-try cycle counts, scores, packed params, class map — is
        still captured and compared.
        """
        from repro.engine.report import membership
        from repro.obs.report import record_try_groups

        grouped = run.record is not None and record_try_groups(run.record) > 1
        cycles: list[dict[str, Any]] = []
        if run.record is not None and run.instrument == "full" and not grouped:
            for c in run.record.ranks[0].cycles:
                cycles.append(
                    {
                        "index": int(c.index),
                        "n_classes": int(c.n_classes),
                        "log_marginal": float(c.log_marginal),
                        "w_j_entropy": float(c.w_j_entropy),
                    }
                )
        tries: list[dict[str, Any]] = []
        for t in run.result.tries:
            scores = t.classification.scores
            assert scores is not None
            tries.append(
                {
                    "try_index": int(t.try_index),
                    "n_classes_requested": int(t.n_classes_requested),
                    "n_cycles": int(t.n_cycles),
                    "converged": bool(t.converged),
                    "duplicate_of": t.duplicate_of,
                    "score": float(scores.log_marginal_cs),
                    "log_lik_obs": float(scores.log_lik_obs),
                    "w_j": [float(v) for v in scores.w_j],
                    "log_pi": [float(v) for v in t.classification.log_pi],
                    "params": pack_term_params(t.classification),
                }
            )
        best = run.result.best.classification
        wts, hard = membership(db, best)
        if wts.shape[1] >= 2:
            part = np.partition(wts, wts.shape[1] - 2, axis=1)
            margins = part[:, -1] - part[:, -2]
        else:
            margins = np.ones(wts.shape[0])
        return cls(
            meta=meta,
            cycles=cycles,
            tries=tries,
            class_map=[int(v) for v in hard],
            margins=[float(v) for v in margins],
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_version": TRACE_VERSION,
            "meta": self.meta.to_dict(),
            "cycles": self.cycles,
            "tries": self.tries,
            "class_map": self.class_map,
            "margins": self.margins,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunTrace":
        version = int(d.get("trace_version", -1))
        if version != TRACE_VERSION:
            raise ValueError(
                f"trace schema version {version} != expected {TRACE_VERSION}; "
                "regenerate with `python -m repro.verify --regen`"
            )
        return cls(
            meta=TraceMeta.from_dict(d["meta"]),
            cycles=list(d["cycles"]),
            tries=list(d["tries"]),
            class_map=[int(v) for v in d["class_map"]],
            margins=[float(v) for v in d["margins"]],
        )

    def digest(self) -> str:
        """sha256 of the canonical JSON serialization.

        Python's ``repr`` of a float round-trips exactly, so two traces
        share a digest iff every number in them is bitwise identical —
        the digest *is* the bitwise-conformance check, in one string.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def pack_term_params(clf) -> list[float]:
    """Flatten a classification's per-term parameter arrays.

    Concatenates every ndarray field of every term's parameter object
    in declaration order — the same packed layout the M-step Allreduce
    communicates, which makes this vector the natural cross-run
    comparison surface for "did the ranks agree on the model".
    """
    out: list[float] = []
    for params in clf.term_params:
        for f in dataclasses.fields(params):
            value = getattr(params, f.name)
            if isinstance(value, np.ndarray):
                out.extend(float(v) for v in value.reshape(-1))
    return out


def capture_trace(
    db,
    config: dict,
    *,
    world: str = "sequential",
    size: int = 1,
    kernels: str = "fused",
    allreduce: str = "recursive_doubling",
    case: str = "",
    instrument: str = "full",
    spec=None,
) -> RunTrace:
    """Fit once on the requested (world, size, kernels, allreduce) cell.

    ``config`` is the :class:`~repro.engine.search.SearchConfig` kwargs
    of the seeded search; every cell of a conformance matrix must use
    the identical ``config`` or the comparison is meaningless.
    """
    from repro.api import AutoClass, PAutoClass
    from repro.mpc.api import CollectiveConfig

    meta = TraceMeta(
        case=case, world=world, size=size, kernels=kernels, allreduce=allreduce
    )
    if world == "sequential":
        if size != 1:
            raise ValueError("sequential world has exactly 1 processor")
        model = AutoClass(
            spec, instrument=instrument, kernels=kernels, **config
        )
        run = model.fit(db)
    else:
        model = PAutoClass(
            n_processors=size,
            backend=world,
            spec=spec,
            collectives=CollectiveConfig(allreduce=allreduce),
            instrument=instrument,
            kernels=kernels,
            **config,
        )
        run = model.fit(db)
    return RunTrace.from_run(run, db, meta)
