"""The conformance tolerance model.

The paper's claim is *equality*: P-AutoClass on P ranks computes the
same classification sequential AutoClass does.  Floating point makes
"same" a three-valued word, so the tolerance model is explicit about
which of three regimes applies to a pair of runs:

* **bitwise** — the two runs perform the identical sequence of float
  operations, so every compared number must match to the last bit.
  This holds across *worlds* (serial / threads / processes / sim are
  the same SPMD program over the same collectives) whenever the world
  size, the allreduce variant's summation order, and the kernel path
  all agree.  Cross-world bitwise equality is the strong claim this
  subsystem exists to enforce.
* **reduction-order** — the runs reassociate the two Allreduce sums
  differently (different world size, or allreduce variants whose
  association provably differs).  IEEE addition is not associative, so
  per-cycle scores agree only to accumulated rounding; the bound below
  is the one the repo's sequential/parallel equivalence tests have
  used since PR 1 (relative 1e-9 over paper-scale payloads).
* **kernel** — fused vs reference kernels.  The fused Gaussian uses
  the expanded quadratic ``a·x² + b·x + c`` which loses ``~eps·x²/σ²``
  absolute precision; the measured cross-kernel agreement is ~1e-13
  relative on paper-scale data, bounded here at 1e-8.

Whether two *allreduce variants* share a summation order depends on
the world size in a way that is cheap to measure and error-prone to
hand-maintain (``recursive_doubling`` matches ``reduce_bcast`` at
every power of two and at many — not all — other sizes; ``ring``
matches only at P <= 2).  :func:`probe_allreduce_compatible` therefore
*measures* it: both variants reduce the same wide-dynamic-range probe
payloads on a real threads world, and bitwise-equal results mean the
association coincides.  The probe is deterministic and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Class-map flips are tolerated only where the item's top-1/top-2
#: membership margin is below this (a genuinely ambiguous item whose
#: argmax is decided by the last bits of a reduction).
MARGIN_EPS = 1e-6


@dataclass(frozen=True)
class Tolerance:
    """Elementwise comparison bound: ``|a - b| <= abs + rel * |b|``."""

    rel: float
    abs: float
    label: str

    def allows(self, a: float, b: float) -> bool:
        """True when ``a`` conforms to reference ``b`` under this bound.

        NaN never conforms (a NaN anywhere in a trace is itself a bug
        this subsystem exists to catch); ``inf`` conforms only to the
        identical ``inf``.
        """
        if np.isnan(a) or np.isnan(b):
            return False
        if a == b:  # covers the bitwise case and equal infinities
            return True
        if np.isinf(a) or np.isinf(b):
            return False
        return abs(a - b) <= self.abs + self.rel * abs(b)

    def max_err(self, a: np.ndarray, b: np.ndarray) -> tuple[float, float]:
        """``(max_abs_err, max_rel_err)`` over the compared values."""
        a = np.asarray(a, dtype=np.float64).reshape(-1)
        b = np.asarray(b, dtype=np.float64).reshape(-1)
        if a.size == 0:
            return 0.0, 0.0
        diff = np.abs(a - b)
        denom = np.maximum(np.abs(b), np.finfo(np.float64).tiny)
        with np.errstate(invalid="ignore"):
            return float(np.nanmax(diff)), float(np.nanmax(diff / denom))

    def combined(self, other: "Tolerance") -> "Tolerance":
        """The looser of two bounds (both difference axes apply)."""
        if other.rel <= self.rel and other.abs <= self.abs:
            return self
        if self.rel <= other.rel and self.abs <= other.abs:
            return other
        return Tolerance(
            rel=max(self.rel, other.rel),
            abs=max(self.abs, other.abs),
            label=f"{self.label}+{other.label}",
        )


#: Identical operation sequence: equality to the last bit.
BITWISE = Tolerance(rel=0.0, abs=0.0, label="bitwise")

#: Different Allreduce summation order (world size or variant).
REDUCTION_ORDER = Tolerance(rel=1e-9, abs=1e-9, label="reduction-order")

#: Fused vs reference kernel path (expanded-quadratic Gaussian).
KERNEL = Tolerance(rel=1e-8, abs=1e-8, label="kernel")


def _probe_rank(comm, n_slots: int, seed: int):
    """One probe rank: allreduce-SUM a wide-dynamic-range payload."""
    from repro.mpc.reduceops import ReduceOp

    rng = np.random.default_rng(seed + 7919 * comm.rank)
    mantissa = rng.uniform(-1.0, 1.0, size=n_slots)
    exponent = rng.integers(-120, 120, size=n_slots)
    payload = mantissa * np.power(10.0, exponent.astype(np.float64))
    return np.asarray(comm.allreduce(payload, ReduceOp.SUM))


@lru_cache(maxsize=None)
def _probe_digest(algorithm: str, size: int, n_slots: int, seed: int) -> bytes:
    from repro.mpc.api import CollectiveConfig
    from repro.mpc.threadworld import run_spmd_threads

    results = run_spmd_threads(
        _probe_rank,
        size,
        n_slots,
        seed,
        collectives=CollectiveConfig(allreduce=algorithm),
    )
    # Internal determinism is part of the contract: all ranks of one
    # run must agree bitwise, whatever the arrival order.
    first = results[0].tobytes()
    for r, res in enumerate(results[1:], start=1):
        if res.tobytes() != first:
            raise AssertionError(
                f"allreduce {algorithm!r} is rank-divergent at size "
                f"{size} (rank {r} != rank 0) — internal determinism "
                "violated"
            )
    return first


def probe_allreduce_compatible(
    alg_a: str,
    alg_b: str,
    size: int,
    *,
    n_slots: int = 96,
    seed: int = 20240,
) -> bool:
    """Measure whether two allreduce variants share a summation order.

    Runs both variants on a ``size``-rank threads world over the same
    deterministic wide-dynamic-range payloads; bitwise-identical
    results mean the variants reassociate identically at this size
    (and conformance between them is held to :data:`BITWISE`),
    anything else drops them to :data:`REDUCTION_ORDER`.
    """
    if size == 1 or alg_a == alg_b:
        return True
    a, b = sorted((alg_a, alg_b))
    return _probe_digest(a, size, n_slots, seed) == _probe_digest(
        b, size, n_slots, seed
    )


def resolve_tolerance(meta_a, meta_b) -> Tolerance:
    """Tolerance for comparing two runs, from their trace metadata.

    ``meta_a`` / ``meta_b`` carry ``size`` (world size), ``allreduce``
    (variant name) and ``kernels`` (``"fused"``/``"reference"``); see
    :class:`repro.verify.trace.TraceMeta`.  The *world* never loosens
    the bound — cross-world runs of the same shape are bitwise.
    """
    tol = BITWISE
    if meta_a.kernels != meta_b.kernels:
        tol = tol.combined(KERNEL)
    if meta_a.size != meta_b.size:
        tol = tol.combined(REDUCTION_ORDER)
    elif meta_a.allreduce != meta_b.allreduce:
        if not probe_allreduce_compatible(
            meta_a.allreduce, meta_b.allreduce, meta_a.size
        ):
            tol = tol.combined(REDUCTION_ORDER)
    return tol
