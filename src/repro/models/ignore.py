"""The ``ignore`` model — AutoClass's attribute-exclusion term.

AutoClass model files can declare attributes as ``ignore``: the column
stays in the database but contributes nothing to the classification
(no statistics, likelihood 1 everywhere, no parameters).  Analysts use
it to mask identifiers or suspect measurements without rebuilding the
data files; the model-level search can also use it to test whether an
attribute carries class structure at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import Database
from repro.models.base import TermModel, TermParams


@dataclass(frozen=True)
class IgnoreParams(TermParams):
    """No parameters — the term is inert."""


class IgnoreTerm(TermModel):
    """An attribute excluded from the model (AutoClass ``ignore``)."""

    spec_name = "ignore"

    def __init__(self, attr_index: int) -> None:
        self._index = int(attr_index)

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return (self._index,)

    @property
    def n_stats(self) -> int:
        return 0

    def validate(self, db: Database) -> None:
        if not 0 <= self._index < len(db.schema):
            raise ValueError(f"attribute index {self._index} out of range")

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        return np.zeros((wts.shape[1], 0), dtype=np.float64)

    def map_params(self, stats: np.ndarray) -> IgnoreParams:
        return IgnoreParams(n_classes=stats.shape[0])

    def log_likelihood(self, db: Database, params: IgnoreParams) -> np.ndarray:
        return np.zeros((db.n_items, params.n_classes), dtype=np.float64)

    # -- fused-kernel protocol: inert (0 design columns, no-op add) ------

    def design_columns(self, db: Database) -> np.ndarray:
        return np.zeros((db.n_items, 0), dtype=np.float64)

    def loglik_coefficients(self, params: IgnoreParams) -> np.ndarray:
        return np.zeros((0, params.n_classes), dtype=np.float64)

    def log_likelihood_into(
        self,
        db: Database,
        params: IgnoreParams,
        out: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        encoding: object | None = None,
    ) -> np.ndarray:
        del db, params, scratch, encoding
        return out

    def log_prior_density(self, params: IgnoreParams) -> float:
        return 0.0

    def log_marginal(self, stats: np.ndarray) -> float:
        return 0.0

    def n_free_params(self) -> int:
        return 0

    def influence(
        self, params: IgnoreParams, global_params: IgnoreParams
    ) -> np.ndarray:
        return np.zeros(params.n_classes)
