"""Attribute probability models (the AutoClass "terms").

AutoClass factors each class's density over *terms*, one per attribute
(or per correlated block of attributes).  Every term here implements the
:class:`~repro.models.base.TermModel` contract, whose central property is
**additive sufficient statistics**: the weighted statistics a term needs
for its MAP update are sums over items, so a partition of the items over
P ranks can compute local statistics and a single Allreduce reconstructs
the global ones.  That property *is* the hinge of the paper's
parallelization, so it is encoded in the interface rather than being an
implementation detail.

Implemented term families (AutoClass C model names in parentheses):

* :class:`MultinomialTerm` — discrete attribute (``single_multinomial``),
  optionally modelling "unknown" as an extra attribute value;
* :class:`NormalTerm` — real attribute, no missing (``single_normal_cn``);
* :class:`NormalMissingTerm` — real attribute with missing values
  (``single_normal_cm``): Bernoulli presence x Gaussian value;
* :class:`MultiNormalTerm` — correlated block of real attributes
  (``multi_normal_cn``), full-covariance Gaussian.
"""

from repro.models.base import TermModel, TermParams
from repro.models.ignore import IgnoreTerm
from repro.models.multinomial import MultinomialTerm
from repro.models.multinormal import MultiNormalTerm
from repro.models.normal import NormalMissingTerm, NormalTerm
from repro.models.priors import (
    BetaPrior,
    DirichletPrior,
    NormalGammaPrior,
    NormalWishartPrior,
)
from repro.models.registry import ModelSpec, parse_model_spec
from repro.models.summary import DataSummary

__all__ = [
    "BetaPrior",
    "DataSummary",
    "DirichletPrior",
    "IgnoreTerm",
    "ModelSpec",
    "MultiNormalTerm",
    "MultinomialTerm",
    "NormalGammaPrior",
    "NormalMissingTerm",
    "NormalTerm",
    "NormalWishartPrior",
    "TermModel",
    "TermParams",
    "parse_model_spec",
]
