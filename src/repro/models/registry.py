"""Model specifications: which term covers which attribute.

A :class:`ModelSpec` is AutoClass's "functional form of the model" T —
the discrete half of the (T, V) pair the search ranks.  It maps every
attribute of a schema to exactly one term, validates coverage, and is
what both the sequential engine and P-AutoClass execute against.

Specs come from three places:

* :meth:`ModelSpec.default_for` — AutoClass's default assignment
  (normal for reals, picking ``_cm`` when the column has missing cells;
  multinomial for discretes, modelling "unknown" when present);
* :func:`parse_model_spec` — AutoClass ``.model``-file style text, e.g.::

      single_normal_cn x0 x1
      single_multinomial color
      multi_normal_cn height weight girth

* direct construction from term instances (tests, ablations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import AttributeSet, DiscreteAttribute, RealAttribute
from repro.data.database import Database
from repro.models.base import TermModel
from repro.models.ignore import IgnoreTerm
from repro.models.multinomial import MultinomialTerm
from repro.models.multinormal import MultiNormalTerm
from repro.models.normal import NormalMissingTerm, NormalTerm
from repro.models.summary import DataSummary


@dataclass(frozen=True)
class ModelSpec:
    """An ordered set of terms covering every attribute exactly once."""

    schema: AttributeSet
    terms: tuple[TermModel, ...]

    def __post_init__(self) -> None:
        covered: list[int] = []
        for term in self.terms:
            covered.extend(term.attribute_indices)
        expected = list(range(len(self.schema)))
        if sorted(covered) != expected:
            raise ValueError(
                f"terms cover attributes {sorted(covered)}, "
                f"schema requires exactly {expected}"
            )

    # -- construction ----------------------------------------------------

    @staticmethod
    def default_for(
        schema: AttributeSet, summary: DataSummary
    ) -> "ModelSpec":
        """AutoClass's default model: independent terms per attribute."""
        terms: list[TermModel] = []
        for i, attr in enumerate(schema):
            if isinstance(attr, RealAttribute):
                if summary.attribute(i).has_missing:
                    terms.append(NormalMissingTerm(i, attr, summary))
                else:
                    terms.append(NormalTerm(i, attr, summary))
            else:
                assert isinstance(attr, DiscreteAttribute)
                terms.append(MultinomialTerm(i, attr, summary))
        return ModelSpec(schema=schema, terms=tuple(terms))

    # -- aggregate structure ----------------------------------------------

    @property
    def n_terms(self) -> int:
        return len(self.terms)

    @property
    def n_stats(self) -> int:
        """Total packed sufficient-statistic length per class.

        This is the payload size of P-AutoClass's ``update_parameters``
        Allreduce (times ``n_classes``).
        """
        return sum(t.n_stats for t in self.terms)

    def stat_slices(self) -> tuple[slice, ...]:
        """Column slice of each term inside the packed stats array."""
        slices = []
        offset = 0
        for term in self.terms:
            slices.append(slice(offset, offset + term.n_stats))
            offset += term.n_stats
        return tuple(slices)

    def n_free_params(self, n_classes: int) -> int:
        """Continuous parameter count of the full classification model."""
        per_class = sum(t.n_free_params() for t in self.terms)
        return n_classes * per_class + (n_classes - 1)

    def validate(self, db: Database) -> None:
        """Check the spec against a database (types, arity, missing)."""
        if db.schema is not self.schema and db.schema != self.schema:
            raise ValueError("database schema does not match the model spec")
        for term in self.terms:
            term.validate(db)

    def describe(self) -> str:
        lines = [f"ModelSpec: {self.n_terms} terms, {self.n_stats} stats/class"]
        for term in self.terms:
            names = ", ".join(self.schema[i].name for i in term.attribute_indices)
            lines.append(f"  {term.spec_name}({names})")
        return "\n".join(lines)


def parse_model_spec(
    text: str, schema: AttributeSet, summary: DataSummary
) -> ModelSpec:
    """Parse AutoClass ``.model``-style lines into a :class:`ModelSpec`.

    One term per line: ``<model_name> <attr> [<attr> ...]``.  Comments
    (``;`` or ``#``) and blank lines are skipped.  Attributes may be
    named or given as integer indices.
    """
    terms: list[TermModel] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        tokens = line.split()
        name, attr_tokens = tokens[0], tokens[1:]
        if not attr_tokens:
            raise ValueError(f"line {lineno}: term {name!r} names no attributes")
        indices = tuple(_resolve(schema, t, lineno) for t in attr_tokens)
        attrs = tuple(schema[i] for i in indices)
        if name == "single_normal_cn":
            _expect_single(name, indices, lineno)
            _expect_real(attrs[0], name, lineno)
            terms.append(NormalTerm(indices[0], attrs[0], summary))
        elif name == "single_normal_cm":
            _expect_single(name, indices, lineno)
            _expect_real(attrs[0], name, lineno)
            terms.append(NormalMissingTerm(indices[0], attrs[0], summary))
        elif name == "single_multinomial":
            _expect_single(name, indices, lineno)
            if not isinstance(attrs[0], DiscreteAttribute):
                raise ValueError(
                    f"line {lineno}: {name} needs a discrete attribute, "
                    f"got {attrs[0].name!r}"
                )
            terms.append(MultinomialTerm(indices[0], attrs[0], summary))
        elif name == "multi_normal_cn":
            for a in attrs:
                _expect_real(a, name, lineno)
            terms.append(MultiNormalTerm(indices, attrs, summary))  # type: ignore[arg-type]
        elif name == "ignore":
            for idx in indices:
                terms.append(IgnoreTerm(idx))
        else:
            raise ValueError(f"line {lineno}: unknown model {name!r}")
    return ModelSpec(schema=schema, terms=tuple(terms))


def _resolve(schema: AttributeSet, token: str, lineno: int) -> int:
    if token.isdigit():
        idx = int(token)
        if not 0 <= idx < len(schema):
            raise ValueError(f"line {lineno}: attribute index {idx} out of range")
        return idx
    try:
        return schema.index(token)
    except KeyError:
        raise ValueError(f"line {lineno}: unknown attribute {token!r}") from None


def _expect_single(name: str, indices: tuple[int, ...], lineno: int) -> None:
    if len(indices) != 1:
        raise ValueError(
            f"line {lineno}: {name} takes exactly one attribute, got {len(indices)}"
        )


def _expect_real(attr: object, name: str, lineno: int) -> None:
    if not isinstance(attr, RealAttribute):
        raise ValueError(f"line {lineno}: {name} needs real attributes")


def pack_stats(spec: ModelSpec, per_term: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-term ``(J, n_stats_t)`` arrays into ``(J, n_stats)``.

    The inverse of :func:`unpack_stats`; together they define the exact
    byte layout of the ``update_parameters`` Allreduce payload.
    """
    if len(per_term) != spec.n_terms:
        raise ValueError(f"{len(per_term)} stat blocks for {spec.n_terms} terms")
    return np.concatenate(per_term, axis=1)


def unpack_stats(spec: ModelSpec, packed: np.ndarray) -> list[np.ndarray]:
    """Split a packed ``(J, n_stats)`` array back into per-term blocks."""
    if packed.ndim != 2 or packed.shape[1] != spec.n_stats:
        raise ValueError(
            f"packed stats shape {packed.shape} incompatible with "
            f"spec n_stats {spec.n_stats}"
        )
    return [packed[:, sl] for sl in spec.stat_slices()]
