"""Real-attribute terms: ``single_normal_cn`` and ``single_normal_cm``.

``single_normal_cn`` ("continuous, no missing") models a real attribute
as a class-conditional Gaussian; ``single_normal_cm`` ("continuous,
missing") augments it with a per-class Bernoulli presence probability,
so a class can be characterized by *whether* the attribute tends to be
recorded as well as by its value — AutoClass's treatment of missing
reals.

Both use the Normal-Inverse-Gamma prior of
:class:`repro.models.priors.NormalGammaPrior`, anchored at the global
data statistics, with the class sigma floored at the attribute's
declared measurement ``error`` (AutoClass's rule that a class cannot
out-resolve the instrument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import RealAttribute
from repro.data.database import Database
from repro.models.base import TermModel, TermParams
from repro.models.priors import LOG_2PI, BetaPrior, NormalGammaPrior
from repro.models.summary import DataSummary


@dataclass(frozen=True)
class NormalParams(TermParams):
    """Per-class (mu, sigma) of a Gaussian term."""

    mu: np.ndarray  # (n_classes,)
    sigma: np.ndarray  # (n_classes,)


@dataclass(frozen=True)
class NormalMissingParams(NormalParams):
    """Gaussian plus per-class probability that the value is present."""

    p_present: np.ndarray  # (n_classes,)


def _gauss_log_pdf(x: np.ndarray, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """``(n_items, n_classes)`` Gaussian log density, broadcast over classes."""
    z = (x[:, None] - mu[None, :]) / sigma[None, :]
    return -0.5 * (z * z) - np.log(sigma)[None, :] - 0.5 * LOG_2PI


class NormalTerm(TermModel):
    """Real attribute with complete data (AutoClass ``single_normal_cn``)."""

    spec_name = "single_normal_cn"

    #: Statistic layout per class: [sum w, sum w*x, sum w*x^2].
    _N_STATS = 3

    def __init__(
        self,
        attr_index: int,
        attr: RealAttribute,
        summary: DataSummary,
    ) -> None:
        self._index = int(attr_index)
        self._attr = attr
        info = summary.attribute(attr_index)
        self._prior = NormalGammaPrior.anchored(info.mean, info.var, attr.error)

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return (self._index,)

    @property
    def n_stats(self) -> int:
        return self._N_STATS

    @property
    def prior(self) -> NormalGammaPrior:
        return self._prior

    def validate(self, db: Database) -> None:
        attr = db.schema[self._index]
        if not isinstance(attr, RealAttribute):
            raise TypeError(f"attribute {self._index} ({attr.name!r}) is not real")
        if db.missing[self._index].any():
            raise ValueError(
                f"attribute {attr.name!r} has missing values; use "
                "single_normal_cm instead of single_normal_cn"
            )

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        x = db.columns[self._index]
        w = wts.sum(axis=0)
        wx = x @ wts
        wxx = np.square(x) @ wts
        return np.column_stack([w, wx, wxx])

    def map_params(self, stats: np.ndarray) -> NormalParams:
        mu, sigma = self._prior.map(stats[:, 0], stats[:, 1], stats[:, 2])
        return NormalParams(n_classes=stats.shape[0], mu=mu, sigma=sigma)

    def log_likelihood(self, db: Database, params: NormalParams) -> np.ndarray:
        return _gauss_log_pdf(db.columns[self._index], params.mu, params.sigma)

    def log_prior_density(self, params: NormalParams) -> float:
        return self._prior.log_pdf(params.mu, params.sigma)

    def log_marginal(self, stats: np.ndarray) -> float:
        return self._prior.log_marginal(stats[:, 0], stats[:, 1], stats[:, 2])

    def n_free_params(self) -> int:
        return 2

    def influence(
        self, params: NormalParams, global_params: NormalParams
    ) -> np.ndarray:
        """KL(class Gaussian || global Gaussian) per class (closed form)."""
        mu_g = global_params.mu[0]
        sg = global_params.sigma[0]
        var_ratio = (params.sigma / sg) ** 2
        return 0.5 * (
            var_ratio + ((params.mu - mu_g) / sg) ** 2 - 1.0 - np.log(var_ratio)
        )


class NormalMissingTerm(TermModel):
    """Real attribute with missing values (AutoClass ``single_normal_cm``).

    Joint term density: present values contribute
    ``p_present * N(x | mu, sigma)``, absent cells contribute
    ``1 - p_present``.
    """

    spec_name = "single_normal_cm"

    #: Statistic layout per class: [sum w present, sum w*x, sum w*x^2,
    #: sum w missing].
    _N_STATS = 4

    def __init__(
        self,
        attr_index: int,
        attr: RealAttribute,
        summary: DataSummary,
        *,
        presence_prior: BetaPrior | None = None,
    ) -> None:
        self._index = int(attr_index)
        self._attr = attr
        info = summary.attribute(attr_index)
        self._prior = NormalGammaPrior.anchored(info.mean, info.var, attr.error)
        self._presence_prior = presence_prior or BetaPrior()

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return (self._index,)

    @property
    def n_stats(self) -> int:
        return self._N_STATS

    @property
    def prior(self) -> NormalGammaPrior:
        return self._prior

    @property
    def presence_prior(self) -> BetaPrior:
        return self._presence_prior

    def validate(self, db: Database) -> None:
        attr = db.schema[self._index]
        if not isinstance(attr, RealAttribute):
            raise TypeError(f"attribute {self._index} ({attr.name!r}) is not real")

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        x = db.columns[self._index]
        miss = db.missing[self._index]
        present = ~miss
        xp = np.where(present, x, 0.0)  # zero-fill NaNs before the matmuls
        w_present = present.astype(np.float64) @ wts
        wx = xp @ wts
        wxx = np.square(xp) @ wts
        w_missing = miss.astype(np.float64) @ wts
        return np.column_stack([w_present, wx, wxx, w_missing])

    def map_params(self, stats: np.ndarray) -> NormalMissingParams:
        mu, sigma = self._prior.map(stats[:, 0], stats[:, 1], stats[:, 2])
        p_present = self._presence_prior.map(stats[:, 0], stats[:, 3])
        return NormalMissingParams(
            n_classes=stats.shape[0], mu=mu, sigma=sigma, p_present=p_present
        )

    def log_likelihood(self, db: Database, params: NormalMissingParams) -> np.ndarray:
        x = db.columns[self._index]
        miss = db.missing[self._index]
        xp = np.where(miss, 0.0, x)
        out = _gauss_log_pdf(xp, params.mu, params.sigma)
        out += np.log(params.p_present)[None, :]
        if miss.any():
            out[miss] = np.log1p(-params.p_present)[None, :]
        return out

    def log_prior_density(self, params: NormalMissingParams) -> float:
        return self._prior.log_pdf(params.mu, params.sigma) + self._presence_prior.log_pdf(
            params.p_present
        )

    def log_marginal(self, stats: np.ndarray) -> float:
        return self._prior.log_marginal(
            stats[:, 0], stats[:, 1], stats[:, 2]
        ) + self._presence_prior.log_marginal(stats[:, 0], stats[:, 3])

    def n_free_params(self) -> int:
        return 3

    def influence(
        self, params: NormalMissingParams, global_params: NormalMissingParams
    ) -> np.ndarray:
        """KL of the joint (presence, value) model against the global one."""
        mu_g = global_params.mu[0]
        sg = global_params.sigma[0]
        q_g = float(global_params.p_present[0])
        var_ratio = (params.sigma / sg) ** 2
        kl_gauss = 0.5 * (
            var_ratio + ((params.mu - mu_g) / sg) ** 2 - 1.0 - np.log(var_ratio)
        )
        q = params.p_present
        kl_bern = q * (np.log(q) - np.log(q_g)) + (1 - q) * (
            np.log1p(-q) - np.log1p(-q_g)
        )
        # The Gaussian part only matters when the value is present.
        return kl_bern + q * kl_gauss
