"""Real-attribute terms: ``single_normal_cn`` and ``single_normal_cm``.

``single_normal_cn`` ("continuous, no missing") models a real attribute
as a class-conditional Gaussian; ``single_normal_cm`` ("continuous,
missing") augments it with a per-class Bernoulli presence probability,
so a class can be characterized by *whether* the attribute tends to be
recorded as well as by its value — AutoClass's treatment of missing
reals.

Both use the Normal-Inverse-Gamma prior of
:class:`repro.models.priors.NormalGammaPrior`, anchored at the global
data statistics, with the class sigma floored at the attribute's
declared measurement ``error`` (AutoClass's rule that a class cannot
out-resolve the instrument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import RealAttribute
from repro.data.database import Database
from repro.models.base import TermModel, TermParams
from repro.models.priors import LOG_2PI, BetaPrior, NormalGammaPrior
from repro.models.summary import DataSummary
from repro.util.logspace import LOG_FLOOR, xlogy


@dataclass(frozen=True)
class NormalParams(TermParams):
    """Per-class (mu, sigma) of a Gaussian term."""

    mu: np.ndarray  # (n_classes,)
    sigma: np.ndarray  # (n_classes,)


@dataclass(frozen=True)
class NormalMissingParams(NormalParams):
    """Gaussian plus per-class probability that the value is present."""

    p_present: np.ndarray  # (n_classes,)


def _gauss_log_pdf(x: np.ndarray, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """``(n_items, n_classes)`` Gaussian log density, broadcast over classes."""
    z = (x[:, None] - mu[None, :]) / sigma[None, :]
    return -0.5 * (z * z) - np.log(sigma)[None, :] - 0.5 * LOG_2PI


def _gauss_log_pdf_into(
    x: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    out: np.ndarray,
    scratch: np.ndarray | None,
) -> np.ndarray:
    """``out += gauss_log_pdf`` using only ``scratch`` and J-sized temps."""
    t = scratch if scratch is not None and scratch.shape == out.shape else (
        np.empty_like(out)
    )
    np.subtract(x[:, None], mu[None, :], out=t)
    np.divide(t, sigma[None, :], out=t)
    np.multiply(t, t, out=t)
    np.multiply(t, -0.5, out=t)
    np.subtract(t, (np.log(sigma) + 0.5 * LOG_2PI)[None, :], out=t)
    np.add(out, t, out=out)
    return out


def _log_presence(p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(log p, log(1-p))`` with both logs floored at :data:`LOG_FLOOR`.

    MAP estimates under the Beta prior keep ``p`` strictly inside (0, 1),
    but the term API accepts arbitrary parameter objects (tests, custom
    inits, serialized params) — and an exact 0/1 would put a ``-inf``
    coefficient into the fused GEMM where it multiplies a zero indicator
    column into NaN.  The floor keeps the density a clamp, not a poison.
    """
    p = np.asarray(p, dtype=np.float64)
    with np.errstate(divide="ignore"):
        log_p = np.maximum(np.log(p), LOG_FLOOR)
        log_q = np.maximum(np.log1p(-p), LOG_FLOOR)
    return log_p, log_q


def _bernoulli_kl(q: np.ndarray, q_g: float) -> np.ndarray:
    """``KL(Bern(q) || Bern(q_g))`` elementwise, NaN-free at the corners.

    Uses the ``0·log(·) = 0`` convention via :func:`repro.util.logspace.
    xlogy`, so ``q`` ∈ {0, 1} (an all-present or all-absent class) and
    degenerate globals ``q_g`` ∈ {0, 1} yield large-but-finite
    divergences instead of ``-inf * 0 = NaN``.
    """
    q = np.asarray(q, dtype=np.float64)
    one_minus_q = 1.0 - q
    kl = (
        xlogy(q, q) - xlogy(q, np.full_like(q, q_g))
        + xlogy(one_minus_q, one_minus_q)
        - xlogy(one_minus_q, np.full_like(q, 1.0 - q_g))
    )
    return kl


def _gauss_coefficients(mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """``(3, J)`` coefficients of the expanded Gaussian log density.

    ``log N(x | mu, sigma) = c + b·x + a·x²`` against the design columns
    ``[1, x, x²]``.
    """
    inv_var = 1.0 / np.square(sigma)
    coef = np.empty((3, mu.shape[0]), dtype=np.float64)
    coef[0] = (
        -0.5 * np.square(mu) * inv_var - np.log(sigma) - 0.5 * LOG_2PI
    )
    coef[1] = mu * inv_var
    coef[2] = -0.5 * inv_var
    return coef


class NormalTerm(TermModel):
    """Real attribute with complete data (AutoClass ``single_normal_cn``)."""

    spec_name = "single_normal_cn"

    #: Statistic layout per class: [sum w, sum w*x, sum w*x^2].
    _N_STATS = 3

    def __init__(
        self,
        attr_index: int,
        attr: RealAttribute,
        summary: DataSummary,
    ) -> None:
        self._index = int(attr_index)
        self._attr = attr
        info = summary.attribute(attr_index)
        self._prior = NormalGammaPrior.anchored(info.mean, info.var, attr.error)

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return (self._index,)

    @property
    def n_stats(self) -> int:
        return self._N_STATS

    @property
    def prior(self) -> NormalGammaPrior:
        return self._prior

    def validate(self, db: Database) -> None:
        attr = db.schema[self._index]
        if not isinstance(attr, RealAttribute):
            raise TypeError(f"attribute {self._index} ({attr.name!r}) is not real")
        if db.missing[self._index].any():
            raise ValueError(
                f"attribute {attr.name!r} has missing values; use "
                "single_normal_cm instead of single_normal_cn"
            )

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        x = db.columns[self._index]
        w = wts.sum(axis=0)
        wx = x @ wts
        wxx = np.square(x) @ wts
        return np.column_stack([w, wx, wxx])

    def map_params(self, stats: np.ndarray) -> NormalParams:
        mu, sigma = self._prior.map(stats[:, 0], stats[:, 1], stats[:, 2])
        return NormalParams(n_classes=stats.shape[0], mu=mu, sigma=sigma)

    def log_likelihood(self, db: Database, params: NormalParams) -> np.ndarray:
        return _gauss_log_pdf(db.columns[self._index], params.mu, params.sigma)

    # -- fused-kernel protocol -------------------------------------------

    def encode(self, db: Database) -> np.ndarray:
        return np.ascontiguousarray(db.columns[self._index], dtype=np.float64)

    def design_columns(self, db: Database) -> np.ndarray:
        x = db.columns[self._index]
        cols = np.empty((x.shape[0], self._N_STATS), dtype=np.float64)
        cols[:, 0] = 1.0
        cols[:, 1] = x
        np.multiply(x, x, out=cols[:, 2])
        return cols

    def loglik_coefficients(self, params: NormalParams) -> np.ndarray:
        return _gauss_coefficients(params.mu, params.sigma)

    def log_likelihood_into(
        self,
        db: Database,
        params: NormalParams,
        out: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        encoding: object | None = None,
    ) -> np.ndarray:
        x = (
            encoding
            if isinstance(encoding, np.ndarray)
            else db.columns[self._index]
        )
        return _gauss_log_pdf_into(x, params.mu, params.sigma, out, scratch)

    def log_prior_density(self, params: NormalParams) -> float:
        return self._prior.log_pdf(params.mu, params.sigma)

    def log_marginal(self, stats: np.ndarray) -> float:
        return self._prior.log_marginal(stats[:, 0], stats[:, 1], stats[:, 2])

    def n_free_params(self) -> int:
        return 2

    def influence(
        self, params: NormalParams, global_params: NormalParams
    ) -> np.ndarray:
        """KL(class Gaussian || global Gaussian) per class (closed form)."""
        mu_g = global_params.mu[0]
        sg = global_params.sigma[0]
        var_ratio = (params.sigma / sg) ** 2
        return 0.5 * (
            var_ratio + ((params.mu - mu_g) / sg) ** 2 - 1.0 - np.log(var_ratio)
        )


class NormalMissingTerm(TermModel):
    """Real attribute with missing values (AutoClass ``single_normal_cm``).

    Joint term density: present values contribute
    ``p_present * N(x | mu, sigma)``, absent cells contribute
    ``1 - p_present``.
    """

    spec_name = "single_normal_cm"

    #: Statistic layout per class: [sum w present, sum w*x, sum w*x^2,
    #: sum w missing].
    _N_STATS = 4

    def __init__(
        self,
        attr_index: int,
        attr: RealAttribute,
        summary: DataSummary,
        *,
        presence_prior: BetaPrior | None = None,
    ) -> None:
        self._index = int(attr_index)
        self._attr = attr
        info = summary.attribute(attr_index)
        self._prior = NormalGammaPrior.anchored(info.mean, info.var, attr.error)
        self._presence_prior = presence_prior or BetaPrior()

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return (self._index,)

    @property
    def n_stats(self) -> int:
        return self._N_STATS

    @property
    def prior(self) -> NormalGammaPrior:
        return self._prior

    @property
    def presence_prior(self) -> BetaPrior:
        return self._presence_prior

    def validate(self, db: Database) -> None:
        attr = db.schema[self._index]
        if not isinstance(attr, RealAttribute):
            raise TypeError(f"attribute {self._index} ({attr.name!r}) is not real")

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        x = db.columns[self._index]
        miss = db.missing[self._index]
        present = ~miss
        xp = np.where(present, x, 0.0)  # zero-fill NaNs before the matmuls
        w_present = present.astype(np.float64) @ wts
        wx = xp @ wts
        wxx = np.square(xp) @ wts
        w_missing = miss.astype(np.float64) @ wts
        return np.column_stack([w_present, wx, wxx, w_missing])

    def map_params(self, stats: np.ndarray) -> NormalMissingParams:
        mu, sigma = self._prior.map(stats[:, 0], stats[:, 1], stats[:, 2])
        p_present = self._presence_prior.map(stats[:, 0], stats[:, 3])
        return NormalMissingParams(
            n_classes=stats.shape[0], mu=mu, sigma=sigma, p_present=p_present
        )

    def log_likelihood(self, db: Database, params: NormalMissingParams) -> np.ndarray:
        x = db.columns[self._index]
        miss = db.missing[self._index]
        xp = np.where(miss, 0.0, x)
        out = _gauss_log_pdf(xp, params.mu, params.sigma)
        # In-place broadcast add / row write (no tiled temporaries).
        log_p, log_q = _log_presence(params.p_present)
        out += log_p
        if miss.any():
            out[miss] = log_q
        return out

    # -- fused-kernel protocol -------------------------------------------

    def encode(self, db: Database) -> dict:
        x = db.columns[self._index]
        miss = db.missing[self._index]
        xp = np.where(miss, 0.0, x)
        return {
            "xp": np.ascontiguousarray(xp, dtype=np.float64),
            "miss": miss,
            "any_missing": bool(miss.any()),
        }

    def design_columns(self, db: Database) -> np.ndarray:
        enc = self.encode(db)
        miss = enc["miss"]
        xp = enc["xp"]
        cols = np.empty((xp.shape[0], self._N_STATS), dtype=np.float64)
        np.subtract(1.0, miss, out=cols[:, 0])  # present indicator
        cols[:, 1] = xp
        np.multiply(xp, xp, out=cols[:, 2])
        cols[:, 3] = miss  # missing indicator
        return cols

    def loglik_coefficients(self, params: NormalMissingParams) -> np.ndarray:
        # Design columns: [present, x·present, x²·present, missing].
        # Present cells contribute log p_present + the expanded Gaussian;
        # absent cells contribute log (1 - p_present) only.
        coef = np.empty((self._N_STATS, params.mu.shape[0]), dtype=np.float64)
        gauss = _gauss_coefficients(params.mu, params.sigma)
        log_p, log_q = _log_presence(params.p_present)
        coef[0] = gauss[0] + log_p
        coef[1] = gauss[1]
        coef[2] = gauss[2]
        coef[3] = log_q
        return coef

    def log_likelihood_into(
        self,
        db: Database,
        params: NormalMissingParams,
        out: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        encoding: object | None = None,
    ) -> np.ndarray:
        enc = encoding if isinstance(encoding, dict) else self.encode(db)
        t = scratch if (
            scratch is not None and scratch.shape == out.shape
        ) else np.empty_like(out)
        np.subtract(enc["xp"][:, None], params.mu[None, :], out=t)
        np.divide(t, params.sigma[None, :], out=t)
        np.multiply(t, t, out=t)
        np.multiply(t, -0.5, out=t)
        log_p, log_q = _log_presence(params.p_present)
        np.subtract(
            t,
            (np.log(params.sigma) + 0.5 * LOG_2PI - log_p)[None, :],
            out=t,
        )
        if enc["any_missing"]:
            t[enc["miss"]] = log_q
        np.add(out, t, out=out)
        return out

    def log_prior_density(self, params: NormalMissingParams) -> float:
        return self._prior.log_pdf(params.mu, params.sigma) + self._presence_prior.log_pdf(
            params.p_present
        )

    def log_marginal(self, stats: np.ndarray) -> float:
        return self._prior.log_marginal(
            stats[:, 0], stats[:, 1], stats[:, 2]
        ) + self._presence_prior.log_marginal(stats[:, 0], stats[:, 3])

    def n_free_params(self) -> int:
        return 3

    def influence(
        self, params: NormalMissingParams, global_params: NormalMissingParams
    ) -> np.ndarray:
        """KL of the joint (presence, value) model against the global one."""
        mu_g = global_params.mu[0]
        sg = global_params.sigma[0]
        q_g = float(global_params.p_present[0])
        var_ratio = (params.sigma / sg) ** 2
        kl_gauss = 0.5 * (
            var_ratio + ((params.mu - mu_g) / sg) ** 2 - 1.0 - np.log(var_ratio)
        )
        q = params.p_present
        kl_bern = _bernoulli_kl(q, q_g)
        # The Gaussian part only matters when the value is present.
        return kl_bern + q * kl_gauss
