"""``single_multinomial`` — the discrete-attribute term.

Each class holds a multinomial over the attribute's symbols under the
AutoClass Dirichlet prior (``alpha = 1 + 1/arity``), giving the classic
AutoClass MAP estimate ``(count + 1/arity) / (total + 1)``.

Missing values follow AutoClass's convention for this model: "unknown"
is treated as **an additional attribute value** when the dataset
contains any (``model_missing=True``), so a class can be characterized
by *not knowing* an attribute.  With ``model_missing=False`` missing
cells simply contribute nothing (log-likelihood 0), which is only valid
for complete columns and is enforced by :meth:`validate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import DiscreteAttribute
from repro.data.database import Database
from repro.models.base import TermModel, TermParams
from repro.models.priors import DirichletPrior
from repro.models.summary import DataSummary
from repro.util.logspace import safe_log


@dataclass(frozen=True)
class MultinomialParams(TermParams):
    """Per-class symbol probabilities, shape ``(n_classes, n_cells)``.

    ``n_cells`` is ``arity`` or ``arity + 1`` when missing is modelled
    (the last cell is the "unknown" value).
    """

    log_p: np.ndarray  # (n_classes, n_cells)

    @property
    def p(self) -> np.ndarray:
        return np.exp(self.log_p)


class MultinomialTerm(TermModel):
    """Discrete attribute term (AutoClass ``single_multinomial``)."""

    spec_name = "single_multinomial"

    def __init__(
        self,
        attr_index: int,
        attr: DiscreteAttribute,
        summary: DataSummary | None = None,
        *,
        model_missing: bool | None = None,
    ) -> None:
        self._index = int(attr_index)
        self._attr = attr
        if model_missing is None:
            if summary is None:
                raise ValueError(
                    "model_missing must be given explicitly when no summary is provided"
                )
            model_missing = summary.attribute(attr_index).has_missing
        self._model_missing = bool(model_missing)
        self._n_cells = attr.arity + (1 if self._model_missing else 0)
        self._prior = DirichletPrior.autoclass(self._n_cells)

    # -- structure ------------------------------------------------------

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return (self._index,)

    @property
    def arity(self) -> int:
        return self._attr.arity

    @property
    def model_missing(self) -> bool:
        return self._model_missing

    @property
    def n_cells(self) -> int:
        return self._n_cells

    @property
    def n_stats(self) -> int:
        return self._n_cells

    @property
    def prior(self) -> DirichletPrior:
        return self._prior

    def validate(self, db: Database) -> None:
        attr = db.schema[self._index]
        if not isinstance(attr, DiscreteAttribute):
            raise TypeError(
                f"attribute {self._index} ({attr.name!r}) is not discrete"
            )
        if attr.arity != self._attr.arity:
            raise ValueError(
                f"attribute {attr.name!r} arity {attr.arity} != "
                f"term arity {self._attr.arity}"
            )
        if not self._model_missing and db.missing[self._index].any():
            raise ValueError(
                f"attribute {attr.name!r} has missing values but the term "
                "was built with model_missing=False"
            )

    # -- statistics and parameters ---------------------------------------

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        """Weighted symbol counts per class: ``c[j, l] = sum_i w_ij [x_i = l]``.

        Vectorized as a one-pass scatter-add keyed by symbol code; the
        missing cell (if modelled) is just one more code.
        """
        codes = db.columns[self._index]
        miss = db.missing[self._index]
        if self._model_missing:
            codes = np.where(miss, self._attr.arity, codes)
            mask = slice(None)
        else:
            mask = ~miss
        n_classes = wts.shape[1]
        stats = np.zeros((n_classes, self._n_cells), dtype=np.float64)
        # add.at scatters rows of wts into the per-code rows of stats.T.
        sel_codes = codes[mask]
        sel_wts = wts[mask]
        np.add.at(stats.T, sel_codes, sel_wts)
        return stats

    def map_params(self, stats: np.ndarray) -> MultinomialParams:
        p = self._prior.map(stats)
        return MultinomialParams(n_classes=stats.shape[0], log_p=safe_log(p))

    def log_likelihood(self, db: Database, params: MultinomialParams) -> np.ndarray:
        codes = db.columns[self._index]
        miss = db.missing[self._index]
        if self._model_missing:
            codes = np.where(miss, self._attr.arity, codes)
            return params.log_p.T[codes]
        out = params.log_p.T[np.where(miss, 0, codes)]
        if miss.any():
            out = out.copy()
            out[miss] = 0.0  # absent cell contributes evidence 1
        return out

    # -- fused-kernel protocol -------------------------------------------

    def encode(self, db: Database) -> dict:
        """Gather-ready effective codes (missing folded in per the model)."""
        codes = db.columns[self._index]
        miss = db.missing[self._index]
        if self._model_missing:
            eff = np.where(miss, self._attr.arity, codes)
            any_unmodelled = False
        else:
            eff = np.where(miss, 0, codes)
            any_unmodelled = bool(miss.any())
        return {
            "codes": np.ascontiguousarray(eff, dtype=np.intp),
            "miss": miss,
            "any_unmodelled_missing": any_unmodelled,
        }

    def design_columns(self, db: Database) -> np.ndarray:
        """One-hot symbol indicators, ``(n_items, n_cells)``.

        Rows with unmodelled missing values are all-zero (they
        contribute neither statistics nor likelihood).
        """
        enc = self.encode(db)
        n = db.n_items
        cols = np.zeros((n, self._n_cells), dtype=np.float64)
        if enc["any_unmodelled_missing"]:
            rows = np.flatnonzero(~enc["miss"])
            cols[rows, enc["codes"][rows]] = 1.0
        else:
            cols[np.arange(n), enc["codes"]] = 1.0
        return cols

    def loglik_coefficients(self, params: MultinomialParams) -> np.ndarray:
        # One-hot design @ log_p.T is exactly the per-item gather.
        return np.ascontiguousarray(params.log_p.T)

    def log_likelihood_into(
        self,
        db: Database,
        params: MultinomialParams,
        out: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        encoding: object | None = None,
    ) -> np.ndarray:
        enc = encoding if isinstance(encoding, dict) else self.encode(db)
        table = np.ascontiguousarray(params.log_p.T)  # (n_cells, J)
        t = scratch if (
            scratch is not None and scratch.shape == out.shape
        ) else np.empty_like(out)
        # mode="clip" skips the bounds-check buffering (codes are
        # validated against the arity at Database construction).
        np.take(table, enc["codes"], axis=0, out=t, mode="clip")
        if enc["any_unmodelled_missing"]:
            t[enc["miss"]] = 0.0  # absent cell contributes evidence 1
        np.add(out, t, out=out)
        return out

    def log_prior_density(self, params: MultinomialParams) -> float:
        return self._prior.log_pdf(params.p)

    def log_marginal(self, stats: np.ndarray) -> float:
        return self._prior.log_marginal(stats)

    def n_free_params(self) -> int:
        return self._n_cells - 1

    def influence(
        self, params: MultinomialParams, global_params: MultinomialParams
    ) -> np.ndarray:
        """KL(class multinomial || global multinomial) per class."""
        p = params.p
        diff = params.log_p - global_params.log_p
        return np.sum(p * diff, axis=1)
