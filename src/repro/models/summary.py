"""Global data summaries — the prior anchors.

AutoClass anchors its parameter priors at the statistics of the *whole*
dataset (global mean/variance per real attribute, presence counts, ...).
In the parallel setting each rank holds only a partition, so these
summaries are defined by **additive moment vectors**: each rank computes
:meth:`DataSummary.local_moments` on its block, one Allreduce sums them,
and :meth:`DataSummary.from_moments` reconstructs the identical global
summary on every rank.  The sequential path is the degenerate case
(``from_database`` = local moments of everything).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import AttributeSet, DiscreteAttribute, RealAttribute
from repro.data.database import Database

#: Moment-vector slots per attribute: [n_present, n_missing, sum, sum_sq].
#: Discrete attributes use only the first two.
_SLOTS = 4


@dataclass(frozen=True)
class AttributeSummary:
    """Global statistics of one attribute."""

    n_present: float
    n_missing: float
    mean: float
    var: float

    @property
    def has_missing(self) -> bool:
        return self.n_missing > 0


@dataclass(frozen=True)
class DataSummary:
    """Global dataset statistics used to build priors and pick models."""

    n_items: int
    attributes: tuple[AttributeSummary, ...]
    schema: AttributeSet

    @staticmethod
    def local_moments(db) -> np.ndarray:
        """Additive moment vector of a (partial) database.

        Layout: ``[n_items, then per attribute (n_present, n_missing,
        sum, sum_sq)]``.  Sums are zero for discrete attributes.
        Accepts a plain :class:`~repro.data.database.Database` or a
        :class:`~repro.data.shards.ShardedDatabase` view — the vector
        is additive over chunks, so a streamed view is summarized with
        O(chunk) peak heap.
        """
        from repro.data.shards import is_streamable

        if is_streamable(db):
            out = np.zeros(1 + _SLOTS * len(db.schema), dtype=np.float64)
            for chunk in db.iter_chunks():
                out += DataSummary._moments_of(chunk)
            return out
        return DataSummary._moments_of(db)

    @staticmethod
    def _moments_of(db: Database) -> np.ndarray:
        out = np.zeros(1 + _SLOTS * len(db.schema), dtype=np.float64)
        out[0] = db.n_items
        for i, attr in enumerate(db.schema):
            base = 1 + _SLOTS * i
            miss = db.missing[i]
            n_miss = float(miss.sum())
            out[base + 0] = db.n_items - n_miss
            out[base + 1] = n_miss
            if isinstance(attr, RealAttribute):
                col = db.columns[i]
                present = col[~miss]
                out[base + 2] = present.sum()
                out[base + 3] = np.square(present).sum()
        return out

    @staticmethod
    def from_moments(schema: AttributeSet, moments: np.ndarray) -> "DataSummary":
        """Rebuild the global summary from (all)reduced moment vectors."""
        moments = np.asarray(moments, dtype=np.float64)
        expect = 1 + _SLOTS * len(schema)
        if moments.shape != (expect,):
            raise ValueError(f"moment vector shape {moments.shape} != ({expect},)")
        summaries = []
        for i, attr in enumerate(schema):
            base = 1 + _SLOTS * i
            n_p, n_m, s, ss = moments[base : base + _SLOTS]
            if isinstance(attr, RealAttribute):
                if n_p > 0:
                    mean = s / n_p
                    var = max(ss / n_p - mean**2, attr.error**2)
                else:
                    mean, var = 0.0, attr.error**2
            else:
                assert isinstance(attr, DiscreteAttribute)
                mean, var = 0.0, 0.0
            summaries.append(
                AttributeSummary(n_present=n_p, n_missing=n_m, mean=mean, var=var)
            )
        return DataSummary(
            n_items=int(round(moments[0])),
            attributes=tuple(summaries),
            schema=schema,
        )

    @staticmethod
    def from_database(db) -> "DataSummary":
        """Sequential path: summarize a full database directly.

        Accepts a plain :class:`~repro.data.database.Database` or a
        :class:`~repro.data.shards.ShardedDatabase` view — the moment
        vector is additive over chunks, so the streamed summary is the
        same O(chunk)-heap pass the E/M cycle uses.
        """
        return DataSummary.from_moments(db.schema, DataSummary.local_moments(db))

    def attribute(self, key: int | str) -> AttributeSummary:
        if isinstance(key, str):
            key = self.schema.index(key)
        return self.attributes[key]
