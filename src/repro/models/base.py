"""The TermModel contract.

A *term* is one factor of a class's probability model — a single
attribute's distribution, or one correlated block of attributes.  The
contract is designed around the paper's parallelization:

1. **Additive statistics.** ``accumulate_stats(db, wts)`` returns a
   dense ``(n_classes, n_stats)`` float array of weighted sufficient
   statistics that is *additive over item partitions*.  P-AutoClass's
   ``update_parameters`` packs these per-term blocks into one buffer,
   Allreduce-sums them, and every rank finalizes identical parameters.
2. **Pure finalization.** ``map_params(stats)`` is a deterministic pure
   function of the *global* statistics, so replicated execution on every
   rank yields bit-identical parameters with zero extra communication.
3. **Log-space likelihoods.** ``log_likelihood(db, params)`` returns the
   per-item, per-class log density consumed by ``update_wts``.

Terms also expose the two Bayesian quantities the search needs:
``log_prior_density`` (the MAP objective's prior part) and
``log_marginal`` (the conjugate evidence of the weighted statistics,
used by the Cheeseman–Stutz approximation in
:mod:`repro.engine.approx`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.data.database import Database


@dataclass(frozen=True)
class TermParams:
    """Base class for a term's per-class MAP parameters.

    Concrete terms subclass this with their own arrays (all stacked over
    the class axis).  Instances are immutable; a new one is produced
    each ``update_parameters``.
    """

    n_classes: int


class TermModel(ABC):
    """Probability model of one term across all classes.

    Subclasses are immutable once constructed (they capture the
    attribute indices and the prior anchored at the global data
    summary); all per-class state lives in :class:`TermParams`.
    """

    #: AutoClass C model-family name (e.g. ``"single_normal_cn"``).
    spec_name: str = "abstract"

    @property
    @abstractmethod
    def attribute_indices(self) -> tuple[int, ...]:
        """Columns of the database this term consumes."""

    @property
    @abstractmethod
    def n_stats(self) -> int:
        """Length of one class's sufficient-statistic vector."""

    @abstractmethod
    def validate(self, db: Database) -> None:
        """Raise if ``db`` violates the term's assumptions (e.g. a
        ``*_cn`` term given missing values)."""

    @abstractmethod
    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        """Weighted sufficient statistics.

        Parameters
        ----------
        db:
            The (local) database block.
        wts:
            ``(n_items, n_classes)`` membership weights from the E-step.

        Returns
        -------
        ``(n_classes, n_stats)`` float64 array, additive over item
        partitions.
        """

    @abstractmethod
    def map_params(self, stats: np.ndarray) -> TermParams:
        """MAP parameters from *global* statistics (pure, deterministic)."""

    @abstractmethod
    def log_likelihood(self, db: Database, params: TermParams) -> np.ndarray:
        """``(n_items, n_classes)`` log density of each item under each
        class's term distribution."""

    @abstractmethod
    def log_prior_density(self, params: TermParams) -> float:
        """Log prior density at the MAP parameters (summed over classes)."""

    @abstractmethod
    def log_marginal(self, stats: np.ndarray) -> float:
        """Conjugate evidence of the weighted statistics (summed over
        classes) — the term's contribution to the Cheeseman–Stutz
        approximation."""

    @abstractmethod
    def n_free_params(self) -> int:
        """Free continuous parameters per class (model-complexity report)."""

    @abstractmethod
    def influence(self, params: TermParams, global_params: TermParams) -> np.ndarray:
        """Per-class influence value of this term.

        AutoClass reports, for each class and attribute, how strongly
        the class's term distribution diverges from the global
        single-class distribution (a KL divergence).  Shape
        ``(n_classes,)``.
        """

    # ------------------------------------------------------------------
    # Fused-kernel protocol (optional; defaults preserve correctness)
    #
    # The :mod:`repro.kernels` layer exploits the fact that every
    # built-in term's log density *and* sufficient statistics are linear
    # in a shared set of per-item features ("design columns").  A term
    # may opt into the fused path by implementing ``design_columns`` /
    # ``loglik_coefficients`` (single-GEMM E- and M-steps) and/or
    # ``log_likelihood_into`` (in-place accumulation with a caller-
    # provided scratch buffer).  The defaults below keep any custom term
    # correct — the kernels simply fall back to the reference math.

    def encode(self, db: Database) -> object | None:
        """Reusable per-database encoding cached in the KernelPlan.

        Whatever this returns is handed back verbatim as the
        ``encoding`` argument of :meth:`log_likelihood_into` on every
        cycle (e.g. gather-ready symbol codes, zero-filled value
        vectors).  ``None`` (the default) means "re-derive from ``db``".
        """
        del db
        return None

    def design_columns(self, db: Database) -> np.ndarray | None:
        """``(n_items, n_stats)`` feature rows for the fused GEMMs.

        Must satisfy ``wts.T @ design_columns(db) ==
        accumulate_stats(db, wts)`` exactly (same column order).  Return
        ``None`` (the default) to opt out of the single-GEMM path.
        """
        del db
        return None

    def loglik_coefficients(self, params: TermParams) -> np.ndarray | None:
        """``(n_stats, n_classes)`` coefficients with
        ``design_columns(db) @ coef == log_likelihood(db, params)``.

        Return ``None`` (the default) if the term's log density is not
        linear in its design features; the fused E-step then uses
        :meth:`log_likelihood_into` for this term instead.
        """
        del params
        return None

    def log_likelihood_into(
        self,
        db: Database,
        params: TermParams,
        out: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        encoding: object | None = None,
    ) -> np.ndarray:
        """Accumulate ``log_likelihood(db, params)`` into ``out`` in place.

        ``scratch``, when given, is a caller-owned ``(n_items,
        n_classes)`` float64 buffer the term may freely overwrite (the
        workspace pool provides it so fused implementations allocate
        nothing per cycle).  ``encoding`` is whatever :meth:`encode`
        returned for this database.  The default implementation falls
        back to ``out += log_likelihood(...)``.
        """
        del scratch, encoding
        out += self.log_likelihood(db, params)
        return out

    # ------------------------------------------------------------------
    # Shared helpers

    def global_stats(self, db: Database) -> np.ndarray:
        """Statistics of the whole block under a single class.

        Equivalent to ``accumulate_stats`` with unit weights on one
        class; used to build the global (J=1) reference parameters for
        influence reports.
        """
        wts = np.ones((db.n_items, 1), dtype=np.float64)
        return self.accumulate_stats(db, wts)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        cols = ",".join(map(str, self.attribute_indices))
        return f"<{type(self).__name__} {self.spec_name} attrs=[{cols}]>"
