"""Conjugate priors: MAP estimates, densities, and marginal likelihoods.

AutoClass is MAP-Bayesian: parameters are point-estimated at the
posterior mode under conjugate priors, and classifications are ranked by
an approximation of the marginal likelihood.  Everything needed for both
lives here, in closed form:

* ``map_*`` — posterior-mode estimate given weighted sufficient stats;
* ``log_pdf_*`` — prior density at a parameter value (enters the MAP
  objective whose monotone growth under EM is a tested invariant);
* ``log_marginal_*`` — the prior-predictive (evidence) of the weighted
  statistics, used by the Cheeseman–Stutz approximation.

Weighted (fractional) counts are used throughout — the E-step hands
each class a fractional share of every item, and all the conjugate
formulas extend to non-integer counts via the gamma function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln, multigammaln

from repro.util.validation import check_positive

LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass(frozen=True)
class DirichletPrior:
    """Symmetric Dirichlet over an ``arity``-simplex.

    AutoClass's ``single_multinomial`` uses hyperparameter
    ``alpha = 1 + 1/arity``, which gives the classic AutoClass MAP
    estimate ``(count + 1/arity) / (total + 1)``.
    """

    arity: int
    alpha: float

    @staticmethod
    def autoclass(arity: int) -> "DirichletPrior":
        """The AutoClass default: ``alpha = 1 + 1/arity``."""
        return DirichletPrior(arity=arity, alpha=1.0 + 1.0 / arity)

    def __post_init__(self) -> None:
        if self.arity < 1:
            raise ValueError(f"arity must be >= 1, got {self.arity}")
        if self.alpha <= 1.0:
            # alpha <= 1 puts the mode on the simplex boundary; MAP then
            # degenerates (zero probabilities), which AutoClass avoids.
            raise ValueError(f"alpha must be > 1 for an interior MAP, got {self.alpha}")

    def map(self, counts: np.ndarray) -> np.ndarray:
        """Posterior mode: ``(c_l + alpha - 1) / (sum_c + arity*(alpha-1))``.

        ``counts`` may be any non-negative array whose **last** axis has
        length ``arity``; the estimate is computed along that axis.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape[-1] != self.arity:
            raise ValueError(
                f"last axis {counts.shape[-1]} != arity {self.arity}"
            )
        a = self.alpha - 1.0
        total = counts.sum(axis=-1, keepdims=True)
        return (counts + a) / (total + self.arity * a)

    def log_pdf(self, p: np.ndarray) -> float:
        """Log Dirichlet density at probability vector(s) ``p``.

        Accepts stacked vectors; returns the summed log density.
        """
        p = np.asarray(p, dtype=np.float64)
        if np.any(p <= 0):
            return -np.inf
        a = self.alpha
        log_b = self.arity * gammaln(a) - gammaln(self.arity * a)
        n_vectors = int(np.prod(p.shape[:-1])) if p.ndim > 1 else 1
        return float((a - 1.0) * np.sum(np.log(p)) - n_vectors * log_b)

    def log_marginal(self, counts: np.ndarray) -> float:
        """Dirichlet-multinomial evidence of (possibly fractional) counts.

        ``log [ B(alpha + c) / B(alpha) ]`` summed over stacked count
        vectors.  The multinomial coefficient is omitted, as in
        AutoClass: it is constant across classifications of the same
        data and cancels in comparisons.
        """
        counts = np.asarray(counts, dtype=np.float64)
        if counts.shape[-1] != self.arity:
            raise ValueError(
                f"last axis {counts.shape[-1]} != arity {self.arity}"
            )
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        a = self.alpha
        total = counts.sum(axis=-1)
        per_vec = (
            np.sum(gammaln(counts + a), axis=-1)
            - gammaln(total + self.arity * a)
            + gammaln(self.arity * a)
            - self.arity * gammaln(a)
        )
        return float(np.sum(per_vec))


@dataclass(frozen=True)
class BetaPrior:
    """Beta prior for a presence/absence probability (missing model)."""

    a: float = 1.5
    b: float = 1.5

    def __post_init__(self) -> None:
        if self.a <= 1.0 or self.b <= 1.0:
            raise ValueError("Beta MAP needs a > 1 and b > 1")

    def map(self, successes: np.ndarray, failures: np.ndarray) -> np.ndarray:
        """Posterior mode of the success probability."""
        s = np.asarray(successes, dtype=np.float64)
        f = np.asarray(failures, dtype=np.float64)
        return (s + self.a - 1.0) / (s + f + self.a + self.b - 2.0)

    def log_pdf(self, p: np.ndarray) -> float:
        p = np.asarray(p, dtype=np.float64)
        if np.any((p <= 0) | (p >= 1)):
            return -np.inf
        log_b = gammaln(self.a) + gammaln(self.b) - gammaln(self.a + self.b)
        return float(
            np.sum((self.a - 1) * np.log(p) + (self.b - 1) * np.log1p(-p))
            - p.size * log_b
        )

    def log_marginal(self, successes: np.ndarray, failures: np.ndarray) -> float:
        """Beta-Bernoulli evidence of fractional success/failure counts."""
        s = np.asarray(successes, dtype=np.float64)
        f = np.asarray(failures, dtype=np.float64)
        if np.any(s < 0) or np.any(f < 0):
            raise ValueError("counts must be non-negative")
        per = (
            gammaln(s + self.a)
            + gammaln(f + self.b)
            - gammaln(s + f + self.a + self.b)
            + gammaln(self.a + self.b)
            - gammaln(self.a)
            - gammaln(self.b)
        )
        return float(np.sum(per))


@dataclass(frozen=True)
class NormalGammaPrior:
    """Normal-Inverse-Gamma prior on a Gaussian's (mean, variance).

    Parameterization: ``mu | sigma^2 ~ N(mu0, sigma^2/kappa0)``,
    ``sigma^2 ~ InvGamma(a0, b0)``.  AutoClass anchors its priors at the
    full-data statistics; we reproduce that by constructing the prior
    from the global mean/variance of the attribute
    (:meth:`anchored`) with unit pseudo-counts, and flooring sigma at
    the attribute's declared measurement error.
    """

    mu0: float
    kappa0: float
    a0: float
    b0: float
    sigma_floor: float

    @staticmethod
    def anchored(
        mean: float, var: float, error: float, *, pseudo_count: float = 1.0
    ) -> "NormalGammaPrior":
        """Prior centered on the global data statistics.

        One pseudo-observation for the mean (``kappa0``) and one for the
        variance (``a0 = 1 + pseudo/2`` keeps the InvGamma proper with a
        finite mode ``b0/(a0+1) ~= var``).
        """
        check_positive("var", var)
        check_positive("error", error)
        a0 = 1.0 + pseudo_count / 2.0
        b0 = var * (a0 + 1.0)
        return NormalGammaPrior(
            mu0=mean, kappa0=pseudo_count, a0=a0, b0=b0, sigma_floor=error
        )

    def posterior(
        self, w: np.ndarray, wx: np.ndarray, wxx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Posterior hyperparameters (mu_n, kappa_n, a_n, b_n).

        ``w, wx, wxx`` are the weighted sufficient statistics
        ``sum w_i``, ``sum w_i x_i``, ``sum w_i x_i^2`` per class
        (vectorized over classes).
        """
        w = np.asarray(w, dtype=np.float64)
        wx = np.asarray(wx, dtype=np.float64)
        wxx = np.asarray(wxx, dtype=np.float64)
        kappa_n = self.kappa0 + w
        mu_n = (self.kappa0 * self.mu0 + wx) / kappa_n
        a_n = self.a0 + w / 2.0
        # Scatter around the weighted mean, guarded against tiny negative
        # values from cancellation.
        with np.errstate(invalid="ignore", divide="ignore"):
            xbar = np.where(w > 0, wx / np.maximum(w, 1e-300), self.mu0)
        scatter = np.maximum(wxx - w * xbar**2, 0.0)
        shrink = self.kappa0 * w * (xbar - self.mu0) ** 2 / (2.0 * kappa_n)
        b_n = self.b0 + scatter / 2.0 + shrink
        return mu_n, kappa_n, a_n, b_n

    def map(
        self, w: np.ndarray, wx: np.ndarray, wxx: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Joint posterior mode (mu, sigma) with the error floor applied."""
        mu_n, kappa_n, a_n, b_n = self.posterior(w, wx, wxx)
        # Mode of the joint NIG density over (mu, sigma^2).
        var = b_n / (a_n + 1.5)
        sigma = np.sqrt(var)
        return mu_n, np.maximum(sigma, self.sigma_floor)

    def log_pdf(self, mu: np.ndarray, sigma: np.ndarray) -> float:
        """Log NIG density at (mu, sigma^2), summed over classes."""
        mu = np.asarray(mu, dtype=np.float64)
        var = np.asarray(sigma, dtype=np.float64) ** 2
        if np.any(var <= 0):
            return -np.inf
        log_norm = (
            0.5 * (np.log(self.kappa0) - LOG_2PI)
            + self.a0 * np.log(self.b0)
            - gammaln(self.a0)
        )
        per = (
            log_norm
            - (self.a0 + 1.5) * np.log(var)
            - (self.b0 + 0.5 * self.kappa0 * (mu - self.mu0) ** 2) / var
        )
        return float(np.sum(per))

    def log_marginal(self, w: np.ndarray, wx: np.ndarray, wxx: np.ndarray) -> float:
        """Evidence of weighted Gaussian data, summed over classes."""
        w = np.asarray(w, dtype=np.float64)
        mu_n, kappa_n, a_n, b_n = self.posterior(w, wx, wxx)
        per = (
            -0.5 * w * LOG_2PI
            + 0.5 * (np.log(self.kappa0) - np.log(kappa_n))
            + self.a0 * np.log(self.b0)
            - a_n * np.log(b_n)
            + gammaln(a_n)
            - gammaln(self.a0)
        )
        return float(np.sum(per))


@dataclass(frozen=True)
class NormalWishartPrior:
    """Normal-Inverse-Wishart prior on a d-variate Gaussian.

    ``mu | Sigma ~ N(mu0, Sigma/kappa0)``, ``Sigma ~ IW(Psi0, nu0)``.
    Anchored at the global data mean/covariance like the univariate case.
    """

    mu0: np.ndarray
    kappa0: float
    nu0: float
    psi0: np.ndarray
    var_floor: np.ndarray

    @staticmethod
    def anchored(
        mean: np.ndarray,
        cov: np.ndarray,
        errors: np.ndarray,
        *,
        pseudo_count: float = 1.0,
    ) -> "NormalWishartPrior":
        mean = np.asarray(mean, dtype=np.float64)
        cov = np.asarray(cov, dtype=np.float64)
        errors = np.asarray(errors, dtype=np.float64)
        d = mean.shape[0]
        if cov.shape != (d, d):
            raise ValueError(f"cov shape {cov.shape} != ({d}, {d})")
        nu0 = d + 1.0 + pseudo_count
        # Scale Psi0 so the prior mode of Sigma is the global covariance.
        psi0 = cov * (nu0 + d + 1.0)
        return NormalWishartPrior(
            mu0=mean,
            kappa0=pseudo_count,
            nu0=nu0,
            psi0=psi0,
            var_floor=errors**2,
        )

    @property
    def dim(self) -> int:
        return int(self.mu0.shape[0])

    def posterior(
        self, w: float, wx: np.ndarray, wxx: np.ndarray
    ) -> tuple[np.ndarray, float, float, np.ndarray]:
        """Posterior (mu_n, kappa_n, nu_n, Psi_n) for one class.

        ``wx`` is the weighted sum vector, ``wxx`` the weighted raw
        second-moment matrix ``sum w_i x_i x_i^T``.
        """
        wx = np.asarray(wx, dtype=np.float64)
        wxx = np.asarray(wxx, dtype=np.float64)
        kappa_n = self.kappa0 + w
        mu_n = (self.kappa0 * self.mu0 + wx) / kappa_n
        nu_n = self.nu0 + w
        xbar = wx / w if w > 0 else self.mu0.copy()
        scatter = wxx - w * np.outer(xbar, xbar)
        dev = (xbar - self.mu0).reshape(-1, 1)
        psi_n = self.psi0 + scatter + (self.kappa0 * w / kappa_n) * (dev @ dev.T)
        # Symmetrize against accumulation noise.
        psi_n = 0.5 * (psi_n + psi_n.T)
        return mu_n, kappa_n, nu_n, psi_n

    def map(self, w: float, wx: np.ndarray, wxx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Joint posterior mode (mu, Sigma) with diagonal variance floor."""
        mu_n, _, nu_n, psi_n = self.posterior(w, wx, wxx)
        d = self.dim
        sigma = psi_n / (nu_n + d + 2.0)
        # Raise diagonal entries to the floor while keeping symmetry.
        deficit = np.maximum(self.var_floor - np.diag(sigma), 0.0)
        sigma = sigma + np.diag(deficit)
        return mu_n, sigma

    def log_marginal(self, w: float, wx: np.ndarray, wxx: np.ndarray) -> float:
        """Evidence of weighted d-variate Gaussian data for one class."""
        d = self.dim
        mu_n, kappa_n, nu_n, psi_n = self.posterior(w, wx, wxx)
        del mu_n
        sign0, logdet0 = np.linalg.slogdet(self.psi0)
        sign_n, logdet_n = np.linalg.slogdet(psi_n)
        if sign0 <= 0 or sign_n <= 0:
            raise ValueError("Psi matrices must be positive definite")
        return float(
            -0.5 * w * d * LOG_2PI
            + 0.5 * d * (np.log(self.kappa0) - np.log(kappa_n))
            + 0.5 * self.nu0 * logdet0
            - 0.5 * nu_n * logdet_n
            + multigammaln(nu_n / 2.0, d)
            - multigammaln(self.nu0 / 2.0, d)
            + 0.5 * w * d * np.log(2.0)
        )
