"""``multi_normal_cn`` — a correlated block of real attributes.

AutoClass's model-level search includes hypotheses "whether attributes
are correlated"; this term is the correlated alternative to a set of
independent :class:`~repro.models.normal.NormalTerm` factors: one
full-covariance multivariate Gaussian per class over a block of real
attributes, under a Normal-Inverse-Wishart prior anchored at the global
data covariance.

Complete data only (the ``_cn`` suffix), enforced by :meth:`validate` —
matching AutoClass C, whose multi-normal model likewise excludes
missing values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.attributes import RealAttribute
from repro.data.database import Database
from repro.models.base import TermModel, TermParams
from repro.models.priors import LOG_2PI, NormalWishartPrior
from repro.models.summary import DataSummary


@dataclass(frozen=True)
class MultiNormalParams(TermParams):
    """Per-class (mu, Sigma) with cached Cholesky factors."""

    mu: np.ndarray  # (n_classes, d)
    sigma: np.ndarray  # (n_classes, d, d)
    chol: np.ndarray  # (n_classes, d, d) lower Cholesky of sigma
    log_det: np.ndarray  # (n_classes,) log |sigma|


class MultiNormalTerm(TermModel):
    """Correlated real block (AutoClass ``multi_normal_cn``)."""

    spec_name = "multi_normal_cn"

    def __init__(
        self,
        attr_indices: tuple[int, ...],
        attrs: tuple[RealAttribute, ...],
        summary: DataSummary,
    ) -> None:
        if len(attr_indices) < 2:
            raise ValueError(
                "multi_normal_cn needs at least 2 attributes; use "
                "single_normal_cn for a single one"
            )
        if len(attr_indices) != len(attrs):
            raise ValueError("attr_indices and attrs must align")
        self._indices = tuple(int(i) for i in attr_indices)
        self._attrs = attrs
        d = len(attrs)
        means = np.array([summary.attribute(i).mean for i in self._indices])
        variances = np.array([summary.attribute(i).var for i in self._indices])
        errors = np.array([a.error for a in attrs])
        # The prior covariance anchor is diagonal at the global per-
        # attribute variances: correlations are something a class has to
        # earn from its data, not inherit from the prior.
        self._prior = NormalWishartPrior.anchored(
            means, np.diag(variances), errors
        )
        self._d = d

    @property
    def attribute_indices(self) -> tuple[int, ...]:
        return self._indices

    @property
    def dim(self) -> int:
        return self._d

    @property
    def n_stats(self) -> int:
        # [w, wx (d), upper triangle of wxx (d(d+1)/2)]
        return 1 + self._d + self._d * (self._d + 1) // 2

    @property
    def prior(self) -> NormalWishartPrior:
        return self._prior

    def validate(self, db: Database) -> None:
        for idx in self._indices:
            attr = db.schema[idx]
            if not isinstance(attr, RealAttribute):
                raise TypeError(f"attribute {idx} ({attr.name!r}) is not real")
            if db.missing[idx].any():
                raise ValueError(
                    f"attribute {attr.name!r} has missing values; "
                    "multi_normal_cn requires complete data"
                )

    # -- statistics -------------------------------------------------------

    def _matrix(self, db: Database) -> np.ndarray:
        return np.column_stack([db.columns[i] for i in self._indices])

    def accumulate_stats(self, db: Database, wts: np.ndarray) -> np.ndarray:
        """Per class: [sum w, sum w x (d), triu(sum w x x^T) (d(d+1)/2)]."""
        x = self._matrix(db)  # (n, d)
        n_classes = wts.shape[1]
        w = wts.sum(axis=0)  # (J,)
        wx = wts.T @ x  # (J, d)
        iu = np.triu_indices(self._d)
        # Pairwise products for the upper triangle, one matmul per class
        # batch: (n, n_pairs) then weighted-summed.
        pair = x[:, iu[0]] * x[:, iu[1]]  # (n, d(d+1)/2)
        wxx = wts.T @ pair  # (J, n_pairs)
        out = np.empty((n_classes, self.n_stats), dtype=np.float64)
        out[:, 0] = w
        out[:, 1 : 1 + self._d] = wx
        out[:, 1 + self._d :] = wxx
        return out

    def _unpack(self, stats_row: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        d = self._d
        w = float(stats_row[0])
        wx = stats_row[1 : 1 + d]
        tri = stats_row[1 + d :]
        wxx = np.zeros((d, d))
        iu = np.triu_indices(d)
        wxx[iu] = tri
        wxx = wxx + np.triu(wxx, 1).T
        return w, wx, wxx

    def map_params(self, stats: np.ndarray) -> MultiNormalParams:
        n_classes = stats.shape[0]
        d = self._d
        mu = np.empty((n_classes, d))
        sigma = np.empty((n_classes, d, d))
        chol = np.empty((n_classes, d, d))
        log_det = np.empty(n_classes)
        for j in range(n_classes):
            w, wx, wxx = self._unpack(stats[j])
            mu[j], sigma[j] = self._prior.map(w, wx, wxx)
            chol[j] = np.linalg.cholesky(sigma[j])
            log_det[j] = 2.0 * np.sum(np.log(np.diag(chol[j])))
        return MultiNormalParams(
            n_classes=n_classes, mu=mu, sigma=sigma, chol=chol, log_det=log_det
        )

    def log_likelihood(self, db: Database, params: MultiNormalParams) -> np.ndarray:
        from scipy.linalg import solve_triangular

        x = self._matrix(db)  # (n, d)
        n = x.shape[0]
        out = np.empty((n, params.n_classes))
        const = -0.5 * self._d * LOG_2PI
        for j in range(params.n_classes):
            dev = x - params.mu[j]  # (n, d)
            # Mahalanobis via the cached Cholesky: solve L z = dev^T.
            z = solve_triangular(params.chol[j], dev.T, lower=True)  # (d, n)
            maha = np.einsum("dn,dn->n", z, z)
            out[:, j] = const - 0.5 * params.log_det[j] - 0.5 * maha
        return out

    # -- fused-kernel protocol -------------------------------------------

    def encode(self, db: Database) -> np.ndarray:
        return np.ascontiguousarray(self._matrix(db))

    def design_columns(self, db: Database) -> np.ndarray:
        x = self._matrix(db)
        d = self._d
        iu = np.triu_indices(d)
        cols = np.empty((x.shape[0], self.n_stats), dtype=np.float64)
        cols[:, 0] = 1.0
        cols[:, 1 : 1 + d] = x
        np.multiply(x[:, iu[0]], x[:, iu[1]], out=cols[:, 1 + d :])
        return cols

    def loglik_coefficients(self, params: MultiNormalParams) -> np.ndarray:
        """Expanded Gaussian quadratic against ``[1, x, triu(x xᵀ)]``.

        ``log N(x) = const + ηᵀx - ½ xᵀP x`` with ``P = Σ⁻¹`` and
        ``η = P μ``; the pairwise design features carry each off-diagonal
        product once, so its coefficient is ``-P_kl`` (``-½ P_kk`` on the
        diagonal).
        """
        from scipy.linalg import cho_solve

        d = self._d
        iu = np.triu_indices(d)
        diag = iu[0] == iu[1]
        eye = np.eye(d)
        coef = np.empty((self.n_stats, params.n_classes), dtype=np.float64)
        for j in range(params.n_classes):
            prec = cho_solve((params.chol[j], True), eye)
            eta = prec @ params.mu[j]
            coef[0, j] = -0.5 * (
                d * LOG_2PI + params.log_det[j] + params.mu[j] @ eta
            )
            coef[1 : 1 + d, j] = eta
            coef[1 + d :, j] = np.where(diag, -0.5 * prec[iu], -prec[iu])
        return coef

    def log_likelihood_into(
        self,
        db: Database,
        params: MultiNormalParams,
        out: np.ndarray,
        *,
        scratch: np.ndarray | None = None,
        encoding: object | None = None,
    ) -> np.ndarray:
        """Per-class Mahalanobis accumulated column-wise into ``out``.

        Uses the cached Cholesky factors (no expanded quadratic); the
        transient arrays are ``(d, n)``-shaped, never ``(n, J)``.
        """
        from scipy.linalg import solve_triangular

        del scratch
        x = encoding if isinstance(encoding, np.ndarray) else self._matrix(db)
        const = -0.5 * self._d * LOG_2PI
        for j in range(params.n_classes):
            dev = x - params.mu[j]
            z = solve_triangular(params.chol[j], dev.T, lower=True)
            maha = np.einsum("dn,dn->n", z, z)
            maha *= -0.5
            maha += const - 0.5 * params.log_det[j]
            out[:, j] += maha
        return out

    def log_prior_density(self, params: MultiNormalParams) -> float:
        """Log NIW density at the MAP (mu, Sigma), summed over classes."""
        from scipy.linalg import cho_solve
        from scipy.special import multigammaln

        p = self._prior
        d = self._d
        sign0, logdet_psi0 = np.linalg.slogdet(p.psi0)
        if sign0 <= 0:
            return -np.inf
        total = 0.0
        for j in range(params.n_classes):
            log_det = float(params.log_det[j])
            dev = params.mu[j] - p.mu0
            inv_dev = cho_solve((params.chol[j], True), dev)
            inv_psi = cho_solve((params.chol[j], True), p.psi0)
            quad = float(dev @ inv_dev)
            trace = float(np.trace(inv_psi))
            total += (
                # N(mu | mu0, Sigma/kappa0)
                -0.5 * d * LOG_2PI
                + 0.5 * d * np.log(p.kappa0)
                - 0.5 * log_det
                - 0.5 * p.kappa0 * quad
                # IW(Sigma | Psi0, nu0)
                + 0.5 * p.nu0 * logdet_psi0
                - 0.5 * p.nu0 * d * np.log(2.0)
                - multigammaln(p.nu0 / 2.0, d)
                - 0.5 * (p.nu0 + d + 1.0) * log_det
                - 0.5 * trace
            )
        return float(total)

    def log_marginal(self, stats: np.ndarray) -> float:
        total = 0.0
        for j in range(stats.shape[0]):
            w, wx, wxx = self._unpack(stats[j])
            total += self._prior.log_marginal(w, wx, wxx)
        return total

    def n_free_params(self) -> int:
        d = self._d
        return d + d * (d + 1) // 2

    def influence(
        self, params: MultiNormalParams, global_params: MultiNormalParams
    ) -> np.ndarray:
        """KL(class Gaussian || global Gaussian) per class (closed form)."""
        from scipy.linalg import cho_solve

        d = self._d
        chol_g = global_params.chol[0]
        logdet_g = float(global_params.log_det[0])
        mu_g = global_params.mu[0]
        out = np.empty(params.n_classes)
        for j in range(params.n_classes):
            trace = float(np.trace(cho_solve((chol_g, True), params.sigma[j])))
            dev = mu_g - params.mu[j]
            quad = float(dev @ cho_solve((chol_g, True), dev))
            out[j] = 0.5 * (
                trace + quad - d + logdet_g - float(params.log_det[j])
            )
        return out
