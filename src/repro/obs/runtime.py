"""Running SPMD programs under a recorder, on any world.

One entry point serves all four backends:

* :func:`run_recorded` wraps a ``fn(comm, *args)`` SPMD program with a
  per-rank :class:`~repro.obs.recorder.Recorder` bound to the world's
  clock (``comm.wtime`` — wall seconds on real worlds, *virtual machine
  seconds* on the simulated CS-2, so the same schema covers both);
* :func:`recorded_pautoclass` is the module-level (hence picklable)
  SPMD entry the redesigned :class:`repro.api.PAutoClass` hands to
  every world runner.  On the ``processes`` backend each worker returns
  its ``(result, RankRecord)`` pair over the result pipe and the parent
  merges the records — cross-process record merging with no shared
  memory;
* :func:`build_run_record` assembles per-rank records into the unified
  :class:`~repro.obs.record.RunRecord`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.obs.record import RankRecord, RunRecord
from repro.obs.recorder import Recorder, check_instrument, recording


def run_recorded(
    comm,
    fn: Callable,
    *args,
    instrument: str = "off",
    **kwargs,
) -> tuple[object, RankRecord | None]:
    """Run ``fn(comm, *args, **kwargs)`` under this rank's recorder.

    Returns ``(result, rank_record)``; the record is ``None`` when
    ``instrument="off"`` (the program runs exactly as uninstrumented —
    no recorder is installed at all).
    """
    check_instrument(instrument)
    if instrument == "off":
        return fn(comm, *args, **kwargs), None
    rec = Recorder(
        level=instrument,
        rank=comm.rank,
        size=comm.size,
        clock=comm.wtime,
        clock_kind=getattr(comm, "clock_kind", "wall"),
    )
    with recording(rec):
        result = fn(comm, *args, **kwargs)
    return result, rec.to_rank_record(comm_stats=comm.stats)


def recorded_pautoclass(
    comm,
    db,
    config,
    spec,
    instrument: str = "off",
    kernels: str | None = None,
    ckpt=None,
    faults=None,
    try_groups=None,
):
    """P-AutoClass under a recorder — the SPMD entry for every backend.

    Module-level so the ``processes`` world can pickle it by reference.
    ``ckpt`` is a picklable :class:`repro.ckpt.CheckpointSpec` (or
    None); ``faults`` a :class:`repro.mpc.faults.FaultInjector` (or
    None) installed ambiently for this rank — both cross the pickle
    boundary to forked workers unchanged.  ``try_groups`` (None | int |
    ``"auto"``) selects the two-level try-parallel search.
    """
    from repro.mpc.faults import injecting
    from repro.parallel.driver import run_pautoclass

    with injecting(faults):
        return run_recorded(
            comm, run_pautoclass, db, config, spec, kernels, ckpt,
            try_groups,
            instrument=instrument,
        )


def build_run_record(
    backend: str,
    n_processors: int,
    instrument: str,
    rank_records: list[RankRecord | None],
) -> RunRecord | None:
    """Merge per-rank records (any world) into one :class:`RunRecord`.

    Returns ``None`` when instrumentation was off (all records None).
    """
    records = [r for r in rank_records if r is not None]
    if not records:
        return None
    if len(records) != n_processors:
        raise ValueError(
            f"{len(records)} rank records for a {n_processors}-rank world"
        )
    return RunRecord(
        backend=backend,
        n_processors=n_processors,
        instrument=instrument,
        ranks=records,
    )
