"""The observability data model: what one instrumented run records.

Everything in this module is plain data — picklable (records cross
process boundaries when the ``processes`` backend merges its workers'
records) and JSON-serializable (the benchmark harness consumes runs as
JSONL).  The schema is versioned: every exported record carries
``schema_version`` so downstream tooling can reject records it does not
understand.

Schema overview (one :class:`RunRecord` per fit):

* ``RunRecord`` — backend, world size, instrumentation level, and one
  :class:`RankRecord` per SPMD rank;
* ``RankRecord`` — per-rank phase timers (``phase_seconds`` /
  ``phase_calls`` over :data:`PHASES`), kernel counters, the final
  communication totals (subsuming :class:`repro.mpc.api.CommStats`),
  and — at ``instrument="full"`` — per-EM-cycle telemetry
  (:class:`CycleRecord`) and per-collective communication events
  (:class:`CommEventRecord`);
* ``clock`` names the timebase: ``"wall"`` for real backends,
  ``"virtual"`` for the simulated CS-2 — *the schema is identical*,
  which is the point: the paper-style tables render from either.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: Schema version stamped into every exported record.
SCHEMA_VERSION = 1

#: The phase names a run may time, in presentation order.  ``wts`` /
#: ``params`` / ``approx`` are local compute (the paper's Table 2
#: columns); ``allreduce_wts`` / ``allreduce_params`` are the two
#: Allreduce cut points of Figures 4 and 5; ``init`` is the per-try
#: initialization (weights draw + starting M-step).
PHASES = ("init", "wts", "allreduce_wts", "params", "allreduce_params", "approx")

#: Phases that are communication (the Allreduce cut points).
COMM_PHASES = ("allreduce_wts", "allreduce_params")

#: Valid timebases.
CLOCK_KINDS = ("wall", "virtual")


class SchemaError(ValueError):
    """An exported record does not match the expected schema."""


@dataclass(frozen=True)
class CycleRecord:
    """Telemetry of one EM cycle (``instrument="full"`` only)."""

    index: int  # cycle number within the run (monotone per rank)
    n_classes: int  # J of the try this cycle belongs to
    log_marginal: float  # Cheeseman–Stutz log P(X|T) approximation
    delta: float  # log_marginal - previous cycle's (NaN on try start)
    w_j_entropy: float  # entropy (nats) of normalized class weights

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "n_classes": self.n_classes,
            "log_marginal": self.log_marginal,
            "delta": self.delta,
            "w_j_entropy": self.w_j_entropy,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CycleRecord":
        return cls(
            index=int(d["index"]),
            n_classes=int(d["n_classes"]),
            log_marginal=float(d["log_marginal"]),
            delta=float(d["delta"]),
            w_j_entropy=float(d["w_j_entropy"]),
        )


@dataclass(frozen=True)
class CommEventRecord:
    """One collective at an instrumented cut point (``"full"`` only)."""

    phase: str  # which cut point ("allreduce_wts" / "allreduce_params")
    nbytes: int  # reduction payload size
    seconds: float  # time spent in the collective (rank's clock)
    n_calls: int = 1  # >1 when a cut point issues several collectives
    # (the per_term_class reduction granularity)
    overlapped: bool = False  # nonblocking launch; `seconds` is the
    # residual drain only (rounds hidden behind compute are not in it)

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "nbytes": self.nbytes,
            "seconds": self.seconds,
            "n_calls": self.n_calls,
            "overlapped": self.overlapped,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CommEventRecord":
        return cls(
            phase=str(d["phase"]),
            nbytes=int(d["nbytes"]),
            seconds=float(d["seconds"]),
            n_calls=int(d.get("n_calls", 1)),
            overlapped=bool(d.get("overlapped", False)),
        )


@dataclass
class RankRecord:
    """Everything one rank recorded during one fit."""

    rank: int
    size: int
    instrument: str  # "phases" | "full"
    clock: str = "wall"  # "wall" | "virtual"
    wall_seconds: float = 0.0  # rank total, entry to exit, in `clock`
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    cycles: list[CycleRecord] = field(default_factory=list)
    comm_events: list[CommEventRecord] = field(default_factory=list)
    #: Final :class:`~repro.mpc.api.CommStats` of the rank's communicator
    #: (empty for the sequential backend, which has no communicator).
    comm: dict[str, float] = field(default_factory=dict)

    # -- derived -----------------------------------------------------------

    @property
    def total_phase_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def allreduce_seconds(self) -> float:
        return sum(self.phase_seconds.get(p, 0.0) for p in COMM_PHASES)

    @property
    def compute_seconds(self) -> float:
        return self.total_phase_seconds - self.allreduce_seconds

    @property
    def n_cycles(self) -> int:
        """EM cycles timed on this rank (from the wts phase counter)."""
        return self.phase_calls.get("wts", 0)

    def seconds(self, phase: str) -> float:
        return self.phase_seconds.get(phase, 0.0)

    # -- (de)serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "size": self.size,
            "instrument": self.instrument,
            "clock": self.clock,
            "wall_seconds": self.wall_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "phase_calls": dict(self.phase_calls),
            "counters": dict(self.counters),
            "cycles": [c.to_dict() for c in self.cycles],
            "comm_events": [e.to_dict() for e in self.comm_events],
            "comm": dict(self.comm),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RankRecord":
        return cls(
            rank=int(d["rank"]),
            size=int(d["size"]),
            instrument=str(d["instrument"]),
            clock=str(d["clock"]),
            wall_seconds=float(d["wall_seconds"]),
            phase_seconds={str(k): float(v) for k, v in d["phase_seconds"].items()},
            phase_calls={str(k): int(v) for k, v in d["phase_calls"].items()},
            counters={str(k): int(v) for k, v in d.get("counters", {}).items()},
            cycles=[CycleRecord.from_dict(c) for c in d.get("cycles", [])],
            comm_events=[
                CommEventRecord.from_dict(e) for e in d.get("comm_events", [])
            ],
            comm={str(k): float(v) for k, v in d.get("comm", {}).items()},
        )


@dataclass
class RunRecord:
    """One instrumented fit: per-rank records plus run metadata."""

    backend: str
    n_processors: int
    instrument: str
    ranks: list[RankRecord] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        self.ranks = sorted(self.ranks, key=lambda r: r.rank)

    @property
    def clock(self) -> str:
        return self.ranks[0].clock if self.ranks else "wall"

    @property
    def elapsed(self) -> float:
        """Run time in the record's clock (slowest rank)."""
        return max((r.wall_seconds for r in self.ranks), default=0.0)

    @property
    def total_bytes_sent(self) -> int:
        return int(sum(r.comm.get("bytes_sent", 0) for r in self.ranks))

    def rank(self, rank: int) -> RankRecord:
        for r in self.ranks:
            if r.rank == rank:
                return r
        raise KeyError(f"no record for rank {rank}")

    def phase_seconds(self, phase: str) -> float:
        """Mean seconds per rank spent in ``phase``."""
        if not self.ranks:
            return 0.0
        return sum(r.seconds(phase) for r in self.ranks) / len(self.ranks)

    # -- (de)serialization -------------------------------------------------

    def header_dict(self) -> dict[str, Any]:
        return {
            "kind": "run",
            "schema_version": self.schema_version,
            "backend": self.backend,
            "n_processors": self.n_processors,
            "instrument": self.instrument,
            "clock": self.clock,
            "elapsed": self.elapsed,
        }

    def to_dict(self) -> dict[str, Any]:
        d = self.header_dict()
        d["ranks"] = [r.to_dict() for r in self.ranks]
        return d

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunRecord":
        return cls(
            backend=str(d["backend"]),
            n_processors=int(d["n_processors"]),
            instrument=str(d["instrument"]),
            ranks=[RankRecord.from_dict(r) for r in d.get("ranks", [])],
            schema_version=int(d.get("schema_version", SCHEMA_VERSION)),
        )


# ---------------------------------------------------------------------------
# JSONL export — one header line, then one line per rank record.

_REQUIRED_HEADER_KEYS = (
    "kind", "schema_version", "backend", "n_processors", "instrument",
    "clock", "elapsed",
)
_REQUIRED_RANK_KEYS = (
    "kind", "rank", "size", "instrument", "clock", "wall_seconds",
    "phase_seconds", "phase_calls",
)


def write_jsonl(record: RunRecord, path: str | Path) -> Path:
    """Export ``record`` as JSONL: a ``run`` header + one rank per line."""
    path = Path(path)
    lines = [json.dumps(record.header_dict(), sort_keys=True)]
    for rank in record.ranks:
        d = {"kind": "rank", **rank.to_dict()}
        lines.append(json.dumps(d, sort_keys=True))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_jsonl(path: str | Path) -> RunRecord:
    """Load and schema-validate a JSONL export (see :func:`write_jsonl`)."""
    rows = []
    for i, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines()):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: line {i + 1} is not JSON: {exc}") from exc
    if not rows:
        raise SchemaError(f"{path}: empty JSONL export")
    header, rank_rows = rows[0], rows[1:]
    for key in _REQUIRED_HEADER_KEYS:
        if key not in header:
            raise SchemaError(f"{path}: header missing key {key!r}")
    if header["kind"] != "run":
        raise SchemaError(f"{path}: first line kind {header['kind']!r} != 'run'")
    if int(header["schema_version"]) != SCHEMA_VERSION:
        raise SchemaError(
            f"{path}: schema_version {header['schema_version']} != {SCHEMA_VERSION}"
        )
    if header["clock"] not in CLOCK_KINDS:
        raise SchemaError(f"{path}: unknown clock {header['clock']!r}")
    ranks = []
    for i, row in enumerate(rank_rows):
        for key in _REQUIRED_RANK_KEYS:
            if key not in row:
                raise SchemaError(f"{path}: rank line {i} missing key {key!r}")
        if row["kind"] != "rank":
            raise SchemaError(f"{path}: line kind {row['kind']!r} != 'rank'")
        for phase in row["phase_seconds"]:
            if phase not in PHASES:
                raise SchemaError(f"{path}: unknown phase {phase!r}")
        ranks.append(RankRecord.from_dict(row))
    if len(ranks) != int(header["n_processors"]):
        raise SchemaError(
            f"{path}: {len(ranks)} rank lines but header says "
            f"{header['n_processors']} processors"
        )
    return RunRecord(
        backend=str(header["backend"]),
        n_processors=int(header["n_processors"]),
        instrument=str(header["instrument"]),
        ranks=ranks,
        schema_version=int(header["schema_version"]),
    )


def validate_jsonl(path: str | Path) -> RunRecord:
    """Alias of :func:`read_jsonl` — reading *is* schema validation."""
    return read_jsonl(path)
