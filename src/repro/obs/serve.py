"""Serving-side observability: queue depth, batching, latency, throughput.

The training path's recorder times the paper's six fixed EM phases;
the serving path (:mod:`repro.serve`) has a different shape — a request
queue, dynamic batches, per-request deadlines — so it gets its own
small, thread-safe aggregate.  A :class:`ServeMetrics` lives on each
:class:`repro.serve.scorer.Scorer` and is updated by the submitting
threads and the worker pool; :meth:`snapshot` returns a plain dict
(JSON-ready) and :meth:`render` a human table, mirroring the
``snapshot/render`` idiom of :mod:`repro.obs.report`.

Batch sizes are kept as an exact histogram (size -> count): batches are
bounded by ``max_batch``, so the histogram is small by construction,
and the batch-size distribution *is* the tuning signal the
``max_batch`` / ``max_wait_ms`` knobs are turned against.
"""

from __future__ import annotations

import threading
import time
from repro.util.tables import format_table


class ServeMetrics:
    """Thread-safe counters for one scoring service instance."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self.n_submitted = 0      # requests accepted into the queue
        self.n_completed = 0      # requests fulfilled
        self.n_errors = 0         # requests fulfilled with an error
        self.n_rejected = 0       # backpressure rejections (never queued)
        self.n_timeouts = 0       # result() deadlines that expired
        self.n_cancelled = 0      # timed-out requests dropped before scoring
        self.n_batches = 0
        self.n_items = 0          # items scored across all batches
        self.batch_hist: dict[int, int] = {}   # batch size (items) -> count
        self.queue_depth = 0      # current queued requests
        self.queue_depth_peak = 0
        self.latency_total_s = 0.0
        self.latency_max_s = 0.0
        self._first_submit: float | None = None
        self._last_done: float | None = None

    # -- update hooks (called by the Scorer) ------------------------------

    def now(self) -> float:
        return self._clock()

    def on_submit(self) -> None:
        with self._lock:
            self.n_submitted += 1
            self.queue_depth += 1
            self.queue_depth_peak = max(self.queue_depth_peak, self.queue_depth)
            if self._first_submit is None:
                self._first_submit = self._clock()

    def on_reject(self) -> None:
        with self._lock:
            self.n_rejected += 1

    def on_timeout(self) -> None:
        with self._lock:
            self.n_timeouts += 1

    def on_cancel(self) -> None:
        """A timed-out request removed from the queue before a worker
        took it — its kernel pass was saved."""
        with self._lock:
            self.n_cancelled += 1
            self.queue_depth -= 1

    def on_orphan(self, n_requests: int) -> None:
        """Requests dropped from the queue by a non-draining close."""
        with self._lock:
            self.queue_depth -= n_requests

    def on_batch(self, n_requests: int, n_items: int) -> None:
        with self._lock:
            self.n_batches += 1
            self.n_items += n_items
            self.queue_depth -= n_requests
            self.batch_hist[n_items] = self.batch_hist.get(n_items, 0) + 1

    def on_done(self, latency_s: float, *, error: bool = False) -> None:
        with self._lock:
            self.n_completed += 1
            if error:
                self.n_errors += 1
            self.latency_total_s += latency_s
            self.latency_max_s = max(self.latency_max_s, latency_s)
            self._last_done = self._clock()

    # -- read side --------------------------------------------------------

    @property
    def mean_batch_items(self) -> float:
        with self._lock:
            return self.n_items / self.n_batches if self.n_batches else 0.0

    @property
    def mean_latency_s(self) -> float:
        with self._lock:
            if not self.n_completed:
                return 0.0
            return self.latency_total_s / self.n_completed

    @property
    def throughput_items_per_s(self) -> float:
        """Items scored per wall second, first submit to last completion."""
        with self._lock:
            if self._first_submit is None or self._last_done is None:
                return 0.0
            elapsed = self._last_done - self._first_submit
            return self.n_items / elapsed if elapsed > 0 else float("inf")

    def snapshot(self) -> dict:
        """Plain-data view (JSON-ready; histogram keys become strings)."""
        with self._lock:
            hist = dict(sorted(self.batch_hist.items()))
        return {
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_errors": self.n_errors,
            "n_rejected": self.n_rejected,
            "n_timeouts": self.n_timeouts,
            "n_cancelled": self.n_cancelled,
            "n_batches": self.n_batches,
            "n_items": self.n_items,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "batch_size_hist": {str(k): v for k, v in hist.items()},
            "mean_batch_items": self.mean_batch_items,
            "mean_latency_s": self.mean_latency_s,
            "latency_max_s": self.latency_max_s,
            "throughput_items_per_s": self.throughput_items_per_s,
        }

    def render(self) -> str:
        """Human-readable summary table plus the batch-size histogram."""
        snap = self.snapshot()
        rows = [
            ("requests", f"{snap['n_submitted']}"),
            ("completed / errors", f"{snap['n_completed']} / {snap['n_errors']}"),
            ("rejected / timeouts / cancelled",
             f"{snap['n_rejected']} / {snap['n_timeouts']} / "
             f"{snap['n_cancelled']}"),
            ("batches (items)", f"{snap['n_batches']} ({snap['n_items']})"),
            ("mean batch items", f"{snap['mean_batch_items']:.1f}"),
            ("queue depth peak", f"{snap['queue_depth_peak']}"),
            ("mean latency", f"{snap['mean_latency_s'] * 1e3:.2f} ms"),
            ("max latency", f"{snap['latency_max_s'] * 1e3:.2f} ms"),
            ("throughput", f"{snap['throughput_items_per_s']:.0f} items/s"),
        ]
        table = format_table(["metric", "value"], rows)
        hist = snap["batch_size_hist"]
        if hist:
            bars = " ".join(f"{k}:{v}" for k, v in hist.items())
            table += f"\nbatch-size histogram (items:count): {bars}"
        return table
