"""Run recorders: the low-overhead instrumentation objects.

The engine, kernel, and parallel layers are instrumented against the
:class:`RunRecorder` protocol and fetch the ambient recorder with
:func:`current` — a single thread-local read.  When nothing is
installed they get the shared :data:`NULL_RECORDER`, whose every
operation is a no-op: the uninstrumented hot path costs one attribute
load and one C-level method call per phase, which is what keeps
``instrument="off"`` free and ``instrument="phases"`` under the 3 %
overhead budget.

Recorders are installed *per rank thread* (SPMD ranks are threads or
processes, and the thread-local scoping follows both), each with the
**clock of its world**: ``time.perf_counter`` on real backends,
``comm.wtime`` — virtual machine seconds — on the simulated CS-2.
Everything downstream is clock-agnostic; the record schema marks which
timebase was used.

Levels (:data:`INSTRUMENT_LEVELS`):

* ``"off"``    — no recorder installed; zero bookkeeping;
* ``"phases"`` — per-phase timers and counters only (aggregates);
* ``"full"``   — phases + per-EM-cycle telemetry + per-collective
  communication events.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable
from typing import Protocol, runtime_checkable

from repro.obs.record import PHASES, RankRecord

#: Instrumentation levels of the redesigned fit API.
INSTRUMENT_LEVELS = ("off", "phases", "full")


def check_instrument(level: str) -> str:
    """Validate an ``instrument=`` argument."""
    if level not in INSTRUMENT_LEVELS:
        raise ValueError(
            f"instrument {level!r} not in {INSTRUMENT_LEVELS}"
        )
    return level


@runtime_checkable
class RunRecorder(Protocol):
    """What instrumented code may ask of the ambient recorder.

    Implementations must keep every method cheap: these calls sit on
    the EM hot path of every backend.
    """

    #: False only on the null recorder — lets call sites skip argument
    #: preparation (e.g. payload size measurement) entirely.
    enabled: bool

    def phase(self, name: str) -> "_PhaseTimer | _NullPhase":
        """Context manager timing one phase occurrence."""
        ...

    def add_phase(self, name: str, seconds: float) -> None:
        """Account ``seconds`` to ``name`` (one call)."""
        ...

    def comm_event(
        self, phase: str, nbytes: int, seconds: float, n_calls: int = 1,
        overlapped: bool = False,
    ) -> None:
        """Record one collective at an instrumented cut point."""
        ...

    def cycle(self, *, n_classes: int, log_marginal: float, w_j) -> None:
        """Record one EM cycle's telemetry."""
        ...

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter (kernel-path attribution etc.)."""
        ...

    def try_boundary(self) -> None:
        """Mark the start of a new classification try."""
        ...


class _NullPhase:
    """Reusable no-op context manager (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class NullRecorder:
    """The do-nothing recorder installed-by-default everywhere."""

    __slots__ = ()
    enabled = False

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def add_phase(self, name: str, seconds: float) -> None:
        return None

    def comm_event(
        self, phase: str, nbytes: int, seconds: float, n_calls: int = 1,
        overlapped: bool = False,
    ) -> None:
        return None

    def cycle(self, *, n_classes: int, log_marginal: float, w_j) -> None:
        return None

    def count(self, name: str, n: int = 1) -> None:
        return None

    def try_boundary(self) -> None:
        return None


#: The shared null recorder (what :func:`current` returns when nothing
#: is installed).
NULL_RECORDER = NullRecorder()


class _PhaseTimer:
    """Times one ``with`` block on the recorder's clock."""

    __slots__ = ("_rec", "_name", "_t0")

    def __init__(self, rec: "Recorder", name: str) -> None:
        self._rec = rec
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = self._rec.clock()
        return self

    def __exit__(self, *exc) -> None:
        self._rec.add_phase(self._name, self._rec.clock() - self._t0)


def _entropy(w_j) -> float:
    """Shannon entropy (nats) of normalized non-negative weights."""
    total = float(sum(w_j))
    if total <= 0.0:
        return 0.0
    h = 0.0
    for w in w_j:
        p = float(w) / total
        if p > 0.0:
            h -= p * math.log(p)
    return h


class Recorder:
    """A per-rank recorder for ``"phases"`` or ``"full"`` instrumentation."""

    __slots__ = (
        "level", "rank", "size", "clock", "clock_kind",
        "phase_seconds", "phase_calls", "counters",
        "cycles_", "comm_events_", "comm_totals",
        "_t_start", "_cycle_index", "_prev_log_marginal", "_full",
    )

    enabled = True

    def __init__(
        self,
        level: str = "phases",
        *,
        rank: int = 0,
        size: int = 1,
        clock: Callable[[], float] = time.perf_counter,
        clock_kind: str = "wall",
    ) -> None:
        if level not in ("phases", "full"):
            raise ValueError(
                f"recorder level must be 'phases' or 'full', got {level!r}"
            )
        self.level = level
        self.rank = rank
        self.size = size
        self.clock = clock
        self.clock_kind = clock_kind
        self.phase_seconds: dict[str, float] = {}
        self.phase_calls: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self.cycles_: list = []
        self.comm_events_: list = []
        self.comm_totals: dict[str, float] = {}
        self._t_start = clock()
        self._cycle_index = 0
        self._prev_log_marginal: float | None = None
        self._full = level == "full"

    # -- hot-path API ------------------------------------------------------

    def phase(self, name: str) -> _PhaseTimer:
        return _PhaseTimer(self, name)

    def add_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.phase_calls[name] = self.phase_calls.get(name, 0) + 1

    def comm_event(
        self, phase: str, nbytes: int, seconds: float, n_calls: int = 1,
        overlapped: bool = False,
    ) -> None:
        self.comm_totals["nbytes"] = self.comm_totals.get("nbytes", 0) + nbytes
        self.comm_totals["n_calls"] = self.comm_totals.get("n_calls", 0) + n_calls
        if self._full:
            from repro.obs.record import CommEventRecord

            self.comm_events_.append(
                CommEventRecord(
                    phase=phase, nbytes=nbytes, seconds=seconds,
                    n_calls=n_calls, overlapped=overlapped,
                )
            )

    def cycle(self, *, n_classes: int, log_marginal: float, w_j) -> None:
        if not self._full:
            self._cycle_index += 1
            return
        from repro.obs.record import CycleRecord

        prev = self._prev_log_marginal
        # A new try restarts from a fresh initialization; comparing its
        # first score against another try's last would be meaningless.
        delta = (log_marginal - prev) if prev is not None else math.nan
        self.cycles_.append(
            CycleRecord(
                index=self._cycle_index,
                n_classes=n_classes,
                log_marginal=log_marginal,
                delta=delta,
                w_j_entropy=_entropy(w_j),
            )
        )
        self._prev_log_marginal = log_marginal
        self._cycle_index += 1

    def try_boundary(self) -> None:
        """Mark the start of a new classification try (resets deltas)."""
        self._prev_log_marginal = None

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    # -- lifecycle ---------------------------------------------------------

    def to_rank_record(self, comm_stats=None) -> RankRecord:
        """Freeze this recorder into a serializable :class:`RankRecord`.

        ``comm_stats`` is the rank communicator's final
        :class:`~repro.mpc.api.CommStats` (None for sequential runs);
        its totals subsume the old ad-hoc ``CommStats`` reporting.
        """
        comm: dict[str, float] = {}
        if comm_stats is not None:
            comm = {
                "n_sends": float(comm_stats.n_sends),
                "n_recvs": float(comm_stats.n_recvs),
                "bytes_sent": float(comm_stats.bytes_sent),
                "bytes_received": float(comm_stats.bytes_received),
                "n_collectives": float(comm_stats.n_collectives),
                "seconds_in_comm": float(comm_stats.seconds_in_comm),
            }
            # Transport split (processes world only; zero elsewhere and
            # then omitted so older records stay shape-identical).
            shm = getattr(comm_stats, "n_shm_msgs", 0)
            pipe = getattr(comm_stats, "n_pipe_msgs", 0)
            if shm or pipe:
                comm["n_shm_msgs"] = float(shm)
                comm["shm_bytes"] = float(comm_stats.shm_bytes)
                comm["n_pipe_msgs"] = float(pipe)
                comm["pipe_bytes"] = float(comm_stats.pipe_bytes)
        unknown = set(self.phase_seconds) - set(PHASES)
        if unknown:
            raise ValueError(f"unknown phases recorded: {sorted(unknown)}")
        return RankRecord(
            rank=self.rank,
            size=self.size,
            instrument=self.level,
            clock=self.clock_kind,
            wall_seconds=self.clock() - self._t_start,
            phase_seconds=dict(self.phase_seconds),
            phase_calls=dict(self.phase_calls),
            counters=dict(self.counters),
            cycles=list(self.cycles_),
            comm_events=list(self.comm_events_),
            comm=comm,
        )


# ---------------------------------------------------------------------------
# Ambient (thread-local) installation.

_tls = threading.local()


def current() -> RunRecorder:
    """The recorder installed on this thread (or the null recorder)."""
    rec = getattr(_tls, "recorder", None)
    return rec if rec is not None else NULL_RECORDER


class recording:
    """Context manager installing ``rec`` as this thread's recorder."""

    __slots__ = ("_rec", "_prev")

    def __init__(self, rec: RunRecorder) -> None:
        self._rec = rec

    def __enter__(self) -> RunRecorder:
        self._prev = getattr(_tls, "recorder", None)
        _tls.recorder = self._rec
        return self._rec

    def __exit__(self, *exc) -> None:
        _tls.recorder = self._prev
