"""repro.obs — backend-agnostic run observability.

The measurement substrate of the redesigned fit API: per-rank phase
timers over the paper's EM phases (wts / params / approx and the two
Allreduce cut points), per-EM-cycle telemetry, communication accounting
that subsumes :class:`repro.mpc.api.CommStats`, and paper-style
reporting (Tables 2–4 shapes) with JSONL export.

Layer map:

* :mod:`repro.obs.record`   — the serializable schema (RunRecord etc.);
* :mod:`repro.obs.recorder` — the hot-path recorder + ambient install;
* :mod:`repro.obs.runtime`  — running SPMD programs under a recorder
  on any world (serial / threads / processes / sim);
* :mod:`repro.obs.report`   — tables, speedup/efficiency, JSONL;
* :mod:`repro.obs.serve`    — serving-side metrics (queue depth, batch
  histogram, latency, throughput) for :mod:`repro.serve`.

Instrumented code does::

    from repro.obs import recorder as obs

    rec = obs.current()            # thread-local; NULL_RECORDER if off
    with rec.phase("wts"):
        ...                        # timed on the world's clock

which costs one thread-local read when instrumentation is off.
"""

from repro.obs.record import (
    CLOCK_KINDS,
    COMM_PHASES,
    PHASES,
    SCHEMA_VERSION,
    CommEventRecord,
    CycleRecord,
    RankRecord,
    RunRecord,
    SchemaError,
    read_jsonl,
    validate_jsonl,
    write_jsonl,
)
from repro.obs.recorder import (
    INSTRUMENT_LEVELS,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    RunRecorder,
    check_instrument,
    current,
    recording,
)
from repro.obs.runtime import build_run_record, recorded_pautoclass, run_recorded
from repro.obs.serve import ServeMetrics

__all__ = [
    "CLOCK_KINDS",
    "COMM_PHASES",
    "CommEventRecord",
    "CycleRecord",
    "INSTRUMENT_LEVELS",
    "NULL_RECORDER",
    "NullRecorder",
    "PHASES",
    "RankRecord",
    "Recorder",
    "RunRecord",
    "RunRecorder",
    "SCHEMA_VERSION",
    "SchemaError",
    "ServeMetrics",
    "build_run_record",
    "check_instrument",
    "current",
    "read_jsonl",
    "recorded_pautoclass",
    "recording",
    "run_recorded",
    "validate_jsonl",
    "write_jsonl",
]
