"""Paper-style reporting over observability records.

The paper's Tables 2–4 split each EM phase into compute vs. Allreduce
time per processor and derive speedup/efficiency from elapsed times.
This module renders the same shapes from any backend's
:class:`~repro.obs.record.RunRecord` — wall seconds from the real
worlds, virtual machine seconds from the simulated CS-2, one schema:

* :func:`phase_table` — per-rank wts/params compute vs. Allreduce
  breakdown (Table 2/3-shaped);
* :func:`cycle_table` — per-EM-cycle telemetry (``"full"`` records);
* :func:`speedup_table` / :func:`speedup_efficiency` — T1/Tp and
  T1/(p·Tp) across runs at different processor counts (Table 4-shaped);
* :func:`render_run` — the composite report behind ``Run.report()``;
* JSONL export/validation re-exported from :mod:`repro.obs.record`
  for the benchmark harness.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.obs.record import (  # noqa: F401  (re-exported for harness use)
    RunRecord,
    SchemaError,
    read_jsonl,
    validate_jsonl,
    write_jsonl,
)
from repro.util.tables import format_table


def _clock_unit(record: RunRecord) -> str:
    return "virtual s" if record.clock == "virtual" else "s"


def phase_table(record: RunRecord) -> str:
    """Per-rank phase breakdown: compute vs. Allreduce, Table 2/3-shaped."""
    unit = _clock_unit(record)
    rows = []
    for r in record.ranks:
        total = r.total_phase_seconds
        comm = r.allreduce_seconds
        rows.append(
            (
                r.rank,
                r.n_cycles,
                f"{r.seconds('wts'):.4f}",
                f"{r.seconds('allreduce_wts'):.4f}",
                f"{r.seconds('params'):.4f}",
                f"{r.seconds('allreduce_params'):.4f}",
                f"{r.seconds('approx'):.4f}",
                f"{r.seconds('init'):.4f}",
                f"{(comm / total * 100) if total else 0:.1f}%",
                f"{r.wall_seconds:.4f}",
            )
        )
    return format_table(
        [
            "rank", "cycles",
            f"wts ({unit})", f"ar-wts ({unit})",
            f"params ({unit})", f"ar-params ({unit})",
            f"approx ({unit})", f"init ({unit})",
            "comm share", f"total ({unit})",
        ],
        rows,
        title=(
            f"Phase breakdown — backend={record.backend} "
            f"P={record.n_processors} ({record.clock} clock); "
            "compute vs. Allreduce per rank (paper Tables 2-3 shape)"
        ),
    )


def comm_table(record: RunRecord) -> str:
    """Per-rank communication totals (subsumes the old CommStats dump)."""
    rows = []
    for r in record.ranks:
        comm = r.comm
        rows.append(
            (
                r.rank,
                int(comm.get("n_collectives", 0)),
                int(comm.get("n_sends", 0)),
                int(comm.get("bytes_sent", 0)),
                int(comm.get("bytes_received", 0)),
                f"{r.allreduce_seconds:.4f}",
            )
        )
    return format_table(
        ["rank", "collectives", "sends", "bytes sent", "bytes recv",
         "allreduce s"],
        rows,
        title=f"Communication totals — backend={record.backend}",
    )


def cycle_table(record: RunRecord, rank: int = 0, max_rows: int = 40) -> str:
    """Per-EM-cycle telemetry of one rank (``instrument="full"`` only)."""
    r = record.rank(rank)
    if not r.cycles:
        return (
            "(no cycle telemetry: record was taken at "
            f"instrument={record.instrument!r}; use instrument='full')"
        )
    cycles = r.cycles
    clipped = len(cycles) > max_rows
    rows = [
        (
            c.index,
            c.n_classes,
            f"{c.log_marginal:.3f}",
            "" if c.delta != c.delta else f"{c.delta:.5f}",  # NaN -> try start
            f"{c.w_j_entropy:.4f}",
        )
        for c in cycles[:max_rows]
    ]
    title = (
        f"EM-cycle telemetry — rank {rank}, {len(cycles)} cycles"
        + (f" (first {max_rows} shown)" if clipped else "")
    )
    return format_table(
        ["cycle", "J", "log P(X|T)~", "delta", "H(w_j)"], rows, title=title
    )


def counter_table(record: RunRecord) -> str:
    """Kernel-path and miscellaneous counters, summed over ranks."""
    totals: dict[str, int] = {}
    for r in record.ranks:
        for name, n in r.counters.items():
            totals[name] = totals.get(name, 0) + n
    if not totals:
        return "(no counters recorded)"
    rows = [(name, totals[name]) for name in sorted(totals)]
    return format_table(["counter", "total"], rows, title="Counters (all ranks)")


def render_run(record: RunRecord) -> str:
    """The composite paper-style report behind ``Run.report()``."""
    parts = [phase_table(record)]
    if any(r.comm for r in record.ranks):
        parts.append(comm_table(record))
    if record.instrument == "full":
        parts.append(cycle_table(record))
        parts.append(counter_table(record))
    unit = _clock_unit(record)
    parts.append(f"elapsed ({unit}, slowest rank): {record.elapsed:.4f}")
    return "\n\n".join(parts)


# ---------------------------------------------------------------------------
# Speedup / efficiency across processor counts.

def speedup_efficiency(
    elapsed_by_procs: Mapping[int, float]
) -> dict[int, tuple[float, float]]:
    """``{p: (speedup, efficiency)}`` from ``{p: elapsed}`` measurements.

    The reference time is the smallest measured processor count
    (ideally 1, as in the paper's Table 4); speedup = T_ref·p_ref/Tp
    reduces to T1/Tp when a single-processor run is present.
    """
    if not elapsed_by_procs:
        raise ValueError("no elapsed measurements given")
    p_ref = min(elapsed_by_procs)
    t_ref = elapsed_by_procs[p_ref]
    out: dict[int, tuple[float, float]] = {}
    for p in sorted(elapsed_by_procs):
        tp = elapsed_by_procs[p]
        speedup = (t_ref * p_ref / tp) if tp > 0 else float("inf")
        out[p] = (speedup, speedup / p)
    return out


def record_try_groups(record: RunRecord) -> int:
    """Number of try-parallel groups a run used (1 when single-level).

    The grouped search records a ``try_groups`` counter on every rank;
    runs predating it (or single-level runs) default to 1.
    """
    return max(
        (r.counters.get("try_groups", 1) for r in record.ranks), default=1
    )


def speedup_table(records: list[RunRecord]) -> str:
    """Speedup/efficiency table from instrumented runs at several P.

    All records must come from the same backend (and therefore the same
    clock); elapsed is the slowest rank's total per run.  Runs are keyed
    by ``(procs, try_groups)``, so the same processor count may appear
    once per group configuration — the paper Table 4 shape with a group
    dimension added.  The reference row is the smallest ``(P, G)``.
    """
    if not records:
        raise ValueError("no records given")
    backends = {r.backend for r in records}
    if len(backends) > 1:
        raise ValueError(f"records mix backends: {sorted(backends)}")
    clocks = {r.clock for r in records}
    if len(clocks) > 1:
        raise ValueError(f"records mix clocks: {sorted(clocks)}")
    elapsed = {
        (r.n_processors, record_try_groups(r)): r.elapsed for r in records
    }
    if len(elapsed) != len(records):
        raise ValueError(
            "duplicate (processor count, try_groups) configurations "
            "among records"
        )
    p_ref, _ = ref = min(elapsed)
    t_ref = elapsed[ref]
    unit = _clock_unit(records[0])
    rows = []
    for p, g in sorted(elapsed):
        tp = elapsed[(p, g)]
        speedup = (t_ref * p_ref / tp) if tp > 0 else float("inf")
        rows.append(
            (p, g, f"{tp:.4f}", f"{speedup:.2f}", f"{speedup / p:.2f}")
        )
    return format_table(
        ["procs", "groups", f"elapsed ({unit})", "speedup", "efficiency"],
        rows,
        title=(
            f"Speedup/efficiency — backend={records[0].backend} "
            "(paper Table 4 shape)"
        ),
    )
