"""SPMD programs executed on the simulated machine by the experiments.

Compute pricing is chosen by the world's ``compute_mode``:

* ``"counted"`` (the experiments' default) — the engine kernels report
  their work through :mod:`repro.util.workhooks` and the simulator
  prices it with the :class:`~repro.simnet.workmodel.WorkModel`.
  Deterministic, and free of the Python call-overhead artifacts a 1996
  C implementation would not have.
* ``"measured"`` — scaled host CPU time (only meaningful when
  partitions stay above ~10^4 items).

The programs themselves are mode-agnostic; they differ from the library
driver only in using the **paper's** communication structure by default
(``granularity="per_term_class"``: the Allreduce inside the per-class /
per-attribute loops, as the paper's Figure 5 draws it).
"""

from __future__ import annotations

import numpy as np

from repro.data.database import Database
from repro.data.partition import block_partition
from repro.engine.approx import update_approximations
from repro.engine.classification import Classification
from repro.engine.params import finalize_parameters, local_update_parameters
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import Communicator
from repro.parallel.pparams import parallel_update_parameters
from repro.parallel.psearch import parallel_initial_classification
from repro.parallel.pwts import parallel_update_wts
from repro.util.rng import SeedSequenceStream

#: Reduction granularity of the figure experiments: the paper's Figure 5
#: places the Allreduce inside the per-class / per-attribute loops.
PAPER_GRANULARITY = "per_term_class"


def paper_base_cycle(
    local_db: Database,
    clf: Classification,
    n_total: int,
    comm: Communicator,
    granularity: str = PAPER_GRANULARITY,
) -> Classification:
    """P-AutoClass ``base_cycle`` with the paper's reduce granularity."""
    wts, reduction = parallel_update_wts(local_db, clf, comm)
    new_clf, global_stats = parallel_update_parameters(
        local_db, clf, wts, reduction.w_j, n_total, comm, granularity
    )
    scores = update_approximations(clf, global_stats, reduction, n_total)
    return new_clf.with_scores(scores, n_cycles=clf.n_cycles + 1)


def wts_only_paper_cycle(
    local_db: Database,
    full_db: Database,
    clf: Classification,
    comm: Communicator,
) -> Classification:
    """Miller & Guo-style cycle: wts parallel, M-step central on rank 0.

    The full weight matrix is gathered to rank 0 (priced by the network
    model) and the whole-dataset M-step runs there alone — its work
    report prices ``n_total`` items on rank 0's clock automatically.
    """
    spec = clf.spec
    n_total = full_db.n_items
    wts, reduction = parallel_update_wts(local_db, clf, comm)
    gathered = comm.gather(wts, root=0)
    if comm.rank == 0:
        assert gathered is not None
        full_wts = np.vstack(gathered)
        global_stats = local_update_parameters(full_db, spec, full_wts)
        log_pi, term_params = finalize_parameters(
            spec, global_stats, reduction.w_j, n_total
        )
        package = (log_pi, term_params, global_stats)
    else:
        package = None
    log_pi, term_params, global_stats = comm.bcast(package, root=0)
    new_clf = Classification(
        spec=spec,
        n_classes=clf.n_classes,
        log_pi=log_pi,
        term_params=term_params,
        n_cycles=clf.n_cycles,
    )
    scores = update_approximations(clf, global_stats, reduction, n_total)
    return new_clf.with_scores(scores, n_cycles=clf.n_cycles + 1)


def classification_program(comm, db, j_list, n_cycles, seed):
    """Fixed-cycle classification pass over ``j_list`` (Figs. 6/7 workload)."""
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    local = block_partition(db, comm.size, comm.rank)
    stream = SeedSequenceStream(seed)
    score = 0.0
    for k, j in enumerate(j_list):
        clf = parallel_initial_classification(
            local, spec, j, db.n_items, stream.child("try", k), comm
        )
        for _ in range(n_cycles):
            clf = paper_base_cycle(local, clf, db.n_items, comm)
        assert clf.scores is not None
        score = clf.scores.log_marginal_cs
    return score


def scaleup_program(comm, db, n_classes, n_measure, seed):
    """One warm-up + ``n_measure`` timed cycles (Fig. 8 workload).

    Returns this rank's virtual time after init and after each measured
    cycle; the harness derives per-cycle global durations.
    """
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    local = block_partition(db, comm.size, comm.rank)
    stream = SeedSequenceStream(seed)
    clf = parallel_initial_classification(
        local, spec, n_classes, db.n_items, stream.child("try", 0), comm
    )
    clf = paper_base_cycle(local, clf, db.n_items, comm)  # warm-up
    marks = [comm.wtime()]
    for _ in range(n_measure):
        clf = paper_base_cycle(local, clf, db.n_items, comm)
        marks.append(comm.wtime())
    return marks


def variant_program(comm, db, n_classes, n_cycles, seed, variant):
    """EXP-A1 workload: run one variant for a fixed number of cycles."""
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    local = block_partition(db, comm.size, comm.rank)
    stream = SeedSequenceStream(seed)
    clf = parallel_initial_classification(
        local, spec, n_classes, db.n_items, stream.child("try", 0), comm
    )
    for _ in range(n_cycles):
        if variant == "pautoclass":
            clf = paper_base_cycle(local, clf, db.n_items, comm)
        elif variant == "wts_only":
            clf = wts_only_paper_cycle(local, db, clf, comm)
        else:
            raise ValueError(f"unknown variant {variant!r}")
    assert clf.scores is not None
    return clf.scores.log_marginal_cs


def granularity_program(comm, db, n_classes, n_cycles, seed, granularity):
    """EXP-A4 workload: packed vs per-term-class parameter reduction."""
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    local = block_partition(db, comm.size, comm.rank)
    stream = SeedSequenceStream(seed)
    clf = parallel_initial_classification(
        local, spec, n_classes, db.n_items, stream.child("try", 0), comm
    )
    for _ in range(n_cycles):
        clf = paper_base_cycle(local, clf, db.n_items, comm, granularity)
    assert clf.scores is not None
    return clf.scores.log_marginal_cs


def allreduce_program(comm, nbytes, n_rounds):
    """EXP-A2 microbenchmark: mean virtual seconds per Allreduce."""
    payload = np.zeros(max(nbytes // 8, 1), dtype=np.float64)
    comm.barrier()
    t0 = comm.wtime()
    for _ in range(n_rounds):
        payload = comm.allreduce(payload)
    return (comm.wtime() - t0) / n_rounds


def kmeans_program(comm, db, k, n_measure, seed):
    """EXP-B1 workload: mean virtual seconds per parallel k-means iteration.

    ``tol=0`` pins the iteration count (no early convergence), so every
    rank executes exactly ``n_measure + 1`` identically shaped
    iterations and the mean is exact.
    """
    from repro.baselines.kmeans import parallel_kmeans

    local = block_partition(db, comm.size, comm.rank)
    # Warm-up + measurement in one run: max_iter fixed, tol=0 means it
    # never converges early, so every rank executes exactly n_measure+1
    # identical-shape iterations.
    t0 = comm.wtime()
    parallel_kmeans(
        comm, local, k, full_db=db, seed=seed, max_iter=n_measure + 1, tol=0.0
    )
    t1 = comm.wtime()
    return (t1 - t0) / (n_measure + 1)


def topology_program(comm, db, n_classes, n_cycles, seed):
    """EXP-A5 workload: the standard fixed-cycle run (machine varies)."""
    return variant_program(comm, db, n_classes, n_cycles, seed, "pautoclass")
