"""Experiment runners: one function per figure/claim.

Each function runs its experiment on the calibrated simulated CS-2 and
returns a result object carrying both the raw numbers (consumed by
tests and benches) and a ``render()`` that prints the same rows/series
the paper's figure plots.

All figure experiments accept ``mode``:

* ``"counted"`` (default) — compute priced by the
  :class:`~repro.simnet.workmodel.WorkModel` (deterministic, free of
  Python call-overhead artifacts);
* ``"measured"`` — compute priced by scaled host CPU time (use with
  scales large enough that partitions stay above ~10^4 items).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.synth import make_paper_database
from repro.engine.classification import Classification
from repro.engine.cycle import base_cycle
from repro.engine.init import initial_classification
from repro.engine.search import PAPER_START_J_LIST
from repro.harness.experiments import ExperimentScale
from repro.harness.programs import (
    allreduce_program,
    classification_program,
    granularity_program,
    scaleup_program,
    variant_program,
)
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import CollectiveConfig
from repro.simnet.calibration import calibrate_cpu_scale
from repro.simnet.costmodel import CostModel
from repro.simnet.machine import MachineSpec, meiko_cs2
from repro.simnet.simworld import SimRunResult, run_spmd_sim
from repro.util.rng import SeedSequenceStream
from repro.util.tables import format_series, format_table
from repro.util.timefmt import format_hms

MODES = ("counted", "measured")


def calibrated_machine(n_procs: int, comm_scale: float = 1.0) -> MachineSpec:
    """The simulated CS-2 with the host-calibrated CPU scale.

    ``comm_scale`` shrinks the latency constants in lock-step with a
    scaled-down workload (see :func:`repro.simnet.machine.meiko_cs2`).
    """
    return meiko_cs2(
        n_procs, cpu_scale=calibrate_cpu_scale(), comm_scale=comm_scale
    )


def _compute_mode(mode: str) -> str:
    """Map an experiment mode onto a simworld compute mode."""
    if mode not in MODES:
        raise ValueError(f"mode {mode!r} not in {MODES}")
    return "counted" if mode == "counted" else "measured"


def _run_classification_sim(
    db, n_procs: int, scale: ExperimentScale, rep: int, mode: str
) -> SimRunResult:
    return run_spmd_sim(
        classification_program,
        n_procs,
        calibrated_machine(n_procs, comm_scale=scale.factor),
        db,
        scale.start_j_list,
        scale.cycles_per_try,
        scale.seed + rep,
        compute_mode=_compute_mode(mode),
    )


# ---------------------------------------------------------------------------
# EXP-F6 — elapsed time vs processors, per dataset size.

@dataclass
class Fig6Result:
    scale: ExperimentScale
    mode: str
    #: elapsed[(n_items, n_procs)] = mean virtual seconds
    elapsed: dict[tuple[int, int], float] = field(default_factory=dict)

    def series(self, n_items: int) -> tuple[list[int], list[float]]:
        procs = sorted({p for (s, p) in self.elapsed if s == n_items})
        return procs, [self.elapsed[(n_items, p)] for p in procs]

    def render(self) -> str:
        sizes = sorted({s for (s, _p) in self.elapsed})
        procs = sorted({p for (_s, p) in self.elapsed})
        rows = []
        for s in sizes:
            rows.append(
                [f"{s} tuples"]
                + [format_hms(self.elapsed[(s, p)]) for p in procs]
            )
        return format_table(
            ["dataset"] + [str(p) for p in procs],
            rows,
            title=(
                "Fig. 6 — average elapsed times [h.mm.ss] of P-AutoClass on "
                f"different numbers of processors "
                f"({self.scale.describe()}, {self.mode})"
            ),
        )


def fig6_elapsed(
    scale: ExperimentScale | None = None, mode: str = "counted"
) -> Fig6Result:
    """EXP-F6: elapsed time of the classification workload vs P."""
    scale = scale or ExperimentScale()
    result = Fig6Result(scale=scale, mode=mode)
    for n_items in scale.sizes:
        db = make_paper_database(n_items, seed=scale.seed)
        for p in scale.procs:
            runs = [
                _run_classification_sim(db, p, scale, rep, mode).elapsed
                for rep in range(scale.n_reps)
            ]
            result.elapsed[(n_items, p)] = float(np.mean(runs))
    return result


# ---------------------------------------------------------------------------
# EXP-F7 — speedup vs processors.

@dataclass
class Fig7Result:
    fig6: Fig6Result

    def speedup(self, n_items: int) -> tuple[list[int], list[float]]:
        procs, times = self.fig6.series(n_items)
        t1 = times[procs.index(1)]
        return procs, [t1 / t for t in times]

    def peak_procs(self, n_items: int) -> int:
        """Processor count at which this dataset's speedup peaks."""
        procs, sp = self.speedup(n_items)
        return procs[int(np.argmax(sp))]

    def render(self) -> str:
        sizes = sorted({s for (s, _p) in self.fig6.elapsed})
        blocks = []
        for s in sizes:
            procs, sp = self.speedup(s)
            blocks.append(
                format_series(
                    f"speedup[{s} tuples]",
                    procs,
                    [f"{v:.2f}" for v in sp],
                    x_label="no. of processors",
                    y_label="T1/Tp",
                )
            )
        procs = sorted({p for (_s, p) in self.fig6.elapsed})
        blocks.append(
            format_series(
                "linear", procs, [float(p) for p in procs],
                x_label="no. of processors", y_label="T1/Tp",
            )
        )
        head = (
            "Fig. 7 — speedup of P-AutoClass on different numbers of "
            f"processors ({self.fig6.scale.describe()}, {self.fig6.mode})"
        )
        return head + "\n" + "\n".join(blocks)


def fig7_speedup(
    scale: ExperimentScale | None = None,
    fig6: Fig6Result | None = None,
    mode: str = "counted",
) -> Fig7Result:
    """EXP-F7: speedup T1/Tp from the Fig. 6 measurements."""
    return Fig7Result(fig6=fig6 or fig6_elapsed(scale, mode))


# ---------------------------------------------------------------------------
# EXP-F8 — scaleup: time per base_cycle, fixed tuples per processor.

@dataclass
class Fig8Result:
    scale: ExperimentScale
    mode: str
    tuples_per_proc: int
    #: seconds_per_cycle[(n_classes, n_procs)]
    seconds_per_cycle: dict[tuple[int, int], float] = field(default_factory=dict)

    def series(self, n_classes: int) -> tuple[list[int], list[float]]:
        procs = sorted({p for (j, p) in self.seconds_per_cycle if j == n_classes})
        return procs, [self.seconds_per_cycle[(n_classes, p)] for p in procs]

    def flatness(self, n_classes: int) -> float:
        """max/min per-cycle time across processor counts (1 = flat)."""
        _, times = self.series(n_classes)
        return max(times) / min(times)

    def render(self) -> str:
        blocks = [
            (
                "Fig. 8 — scaleup: times per base_cycle iteration (sec), "
                f"{self.tuples_per_proc} tuples per processor "
                f"({self.scale.describe()}, {self.mode})"
            )
        ]
        for j in sorted({j for (j, _p) in self.seconds_per_cycle}):
            procs, times = self.series(j)
            blocks.append(
                format_series(
                    f"{j} clusters",
                    procs,
                    [f"{t:.4f}" for t in times],
                    x_label="Number of processors",
                    y_label="sec/cycle",
                )
            )
        return "\n".join(blocks)


def fig8_scaleup(
    scale: ExperimentScale | None = None, mode: str = "counted"
) -> Fig8Result:
    """EXP-F8: per-cycle time with the per-processor load held fixed."""
    scale = scale or ExperimentScale()
    per_proc = scale.scaleup_tuples_per_proc
    result = Fig8Result(scale=scale, mode=mode, tuples_per_proc=per_proc)
    n_measure = max(scale.cycles_per_try, 3)
    for j in scale.scaleup_j:
        for p in scale.procs:
            db = make_paper_database(per_proc * p, seed=scale.seed)
            machine = calibrated_machine(p, comm_scale=scale.factor)
            reps = []
            for rep in range(scale.n_reps):
                run = run_spmd_sim(
                    scaleup_program,
                    p,
                    machine,
                    db,
                    j,
                    n_measure,
                    scale.seed + rep,
                    compute_mode=_compute_mode(mode),
                )
                # Global cycle boundary = slowest rank at each mark.
                marks = np.max(np.array(run.results), axis=0)
                reps.append(float(np.diff(marks).mean()))
            result.seconds_per_cycle[(j, p)] = float(np.mean(reps))
    return result


# ---------------------------------------------------------------------------
# EXP-T1 — profile: base_cycle dominates the sequential runtime.

@dataclass
class T1Result:
    total_seconds: float
    cycle_seconds: float
    wts_seconds: float
    params_seconds: float
    approx_seconds: float

    @property
    def cycle_fraction(self) -> float:
        return self.cycle_seconds / self.total_seconds

    @property
    def approx_fraction_of_cycle(self) -> float:
        return self.approx_seconds / self.cycle_seconds

    def render(self) -> str:
        rows = [
            ("total run", f"{self.total_seconds:.3f}", "1.000"),
            (
                "base_cycle",
                f"{self.cycle_seconds:.3f}",
                f"{self.cycle_fraction:.3f}",
            ),
            (
                "  update_wts",
                f"{self.wts_seconds:.3f}",
                f"{self.wts_seconds / self.total_seconds:.3f}",
            ),
            (
                "  update_parameters",
                f"{self.params_seconds:.3f}",
                f"{self.params_seconds / self.total_seconds:.3f}",
            ),
            (
                "  update_approximations",
                f"{self.approx_seconds:.3f}",
                f"{self.approx_seconds / self.total_seconds:.3f}",
            ),
        ]
        return format_table(
            ["phase", "seconds", "share"],
            rows,
            title=(
                "T1 — sequential time profile (paper: base_cycle ~ 99.5%, "
                "update_approximations negligible)"
            ),
        )


def t1_profile(
    n_items: int = 20_000,
    j_list: tuple[int, ...] = PAPER_START_J_LIST[:4],
    n_cycles: int = 40,
    seed: int = 2000,
) -> T1Result:
    """EXP-T1: where does the sequential run spend its time?

    Runs on the host directly (real ``base_cycle`` timings) — the claim
    is about the algorithm's structure, not the CS-2.
    """
    db = make_paper_database(n_items, seed=seed)
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    stream = SeedSequenceStream(seed)
    wts_s = params_s = approx_s = 0.0
    t_start = time.perf_counter()
    for k, j in enumerate(j_list):
        clf: Classification = initial_classification(
            db, spec, j, stream.child("try", k)
        )
        for _ in range(n_cycles):
            clf, _, stats = base_cycle(db, clf)
            wts_s += stats.seconds_wts
            params_s += stats.seconds_params
            approx_s += stats.seconds_approx
    total = time.perf_counter() - t_start
    return T1Result(
        total_seconds=total,
        cycle_seconds=wts_s + params_s + approx_s,
        wts_seconds=wts_s,
        params_seconds=params_s,
        approx_seconds=approx_s,
    )


# ---------------------------------------------------------------------------
# EXP-T2 — sequential elapsed time grows linearly with dataset size.

@dataclass
class T2Result:
    sizes: list[int]
    seconds: list[float]

    @property
    def r_squared(self) -> float:
        """R^2 of the least-squares line through (size, seconds)."""
        x = np.asarray(self.sizes, dtype=np.float64)
        y = np.asarray(self.seconds, dtype=np.float64)
        coeffs = np.polyfit(x, y, 1)
        fit = np.polyval(coeffs, x)
        ss_res = float(np.sum((y - fit) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

    def render(self) -> str:
        rows = [
            (s, f"{t:.4f}", f"{t / s * 1e6:.2f}")
            for s, t in zip(self.sizes, self.seconds)
        ]
        return format_table(
            ["tuples", "seconds (P=1, simulated CS-2)", "us/tuple"],
            rows,
            title=(
                "T2 — sequential elapsed vs dataset size "
                f"(linear fit R^2 = {self.r_squared:.5f})"
            ),
        )


def t2_linear_sequential(
    scale: ExperimentScale | None = None,
    fig6: Fig6Result | None = None,
    mode: str = "counted",
) -> T2Result:
    """EXP-T2: linearity of sequential time in the dataset size."""
    scale = scale or ExperimentScale()
    if fig6 is None:
        fig6 = Fig6Result(scale=scale, mode=mode)
        for n_items in scale.sizes:
            db = make_paper_database(n_items, seed=scale.seed)
            fig6.elapsed[(n_items, 1)] = _run_classification_sim(
                db, 1, scale, 0, mode
            ).elapsed
    sizes = sorted({s for (s, p) in fig6.elapsed if p == 1})
    return T2Result(
        sizes=list(sizes), seconds=[fig6.elapsed[(s, 1)] for s in sizes]
    )


# ---------------------------------------------------------------------------
# EXP-A1 — P-AutoClass vs wts-only parallelization (Miller & Guo).

@dataclass
class A1Result:
    n_items: int
    n_classes: int
    procs: list[int]
    elapsed_pautoclass: list[float]
    elapsed_wts_only: list[float]

    def advantage(self, p: int) -> float:
        """wts-only time / P-AutoClass time at ``p`` processors."""
        i = self.procs.index(p)
        return self.elapsed_wts_only[i] / self.elapsed_pautoclass[i]

    def render(self) -> str:
        rows = []
        for i, p in enumerate(self.procs):
            rows.append(
                (
                    p,
                    f"{self.elapsed_pautoclass[i]:.4f}",
                    f"{self.elapsed_wts_only[i]:.4f}",
                    f"{self.advantage(p):.2f}x",
                )
            )
        return format_table(
            ["procs", "P-AutoClass (s)", "wts-only (s)", "advantage"],
            rows,
            title=(
                "A1 — both-phases-parallel (paper) vs wts-only parallel "
                f"(Miller & Guo) — {self.n_items} tuples, J={self.n_classes}"
            ),
        )


def ablation_variants(
    n_items: int = 50_000,
    n_classes: int = 8,
    n_cycles: int = 5,
    procs: tuple[int, ...] = (1, 2, 4, 6, 8, 10),
    seed: int = 2000,
    mode: str = "counted",
    comm_scale: float = 1.0,
) -> A1Result:
    """EXP-A1: quantify the paper's improvement over wts-only parallelism."""
    db = make_paper_database(n_items, seed=seed)
    out: dict[str, list[float]] = {"pautoclass": [], "wts_only": []}
    for p in procs:
        machine = calibrated_machine(p, comm_scale=comm_scale)
        for variant, acc in out.items():
            run = run_spmd_sim(
                variant_program,
                p,
                machine,
                db,
                n_classes,
                n_cycles,
                seed,
                variant,
                compute_mode=_compute_mode(mode),
            )
            acc.append(run.elapsed)
    return A1Result(
        n_items=n_items,
        n_classes=n_classes,
        procs=list(procs),
        elapsed_pautoclass=out["pautoclass"],
        elapsed_wts_only=out["wts_only"],
    )


# ---------------------------------------------------------------------------
# EXP-A2 — collective algorithm choice for the Allreduce.

@dataclass
class A2Result:
    nbytes: int
    procs: list[int]
    #: measured[(algorithm, p)] and expected[(algorithm, p)] seconds
    measured: dict[tuple[str, int], float]
    expected: dict[tuple[str, int], float]

    def render(self) -> str:
        algos = sorted({a for (a, _p) in self.measured})
        rows = []
        for p in self.procs:
            for a in algos:
                rows.append(
                    (
                        p,
                        a,
                        f"{self.measured[(a, p)] * 1e6:.1f}",
                        f"{self.expected[(a, p)] * 1e6:.1f}",
                    )
                )
        return format_table(
            ["procs", "algorithm", "simulated (us)", "textbook (us)"],
            rows,
            title=(
                f"A2 — Allreduce algorithms on the CS-2 model "
                f"({self.nbytes} B payload)"
            ),
        )


def ablation_collectives(
    nbytes: int = 8 * 8 * 6,  # J=8 classes x 6 stats — the paper workload's
    procs: tuple[int, ...] = (2, 4, 8, 10),
    n_rounds: int = 50,
) -> A2Result:
    """EXP-A2: simulated vs textbook Allreduce costs per algorithm."""
    measured: dict[tuple[str, int], float] = {}
    expected: dict[tuple[str, int], float] = {}
    for p in procs:
        machine = meiko_cs2(p)
        cost = CostModel(machine)
        for algo in ("recursive_doubling", "ring", "reduce_bcast"):
            run = run_spmd_sim(
                allreduce_program,
                p,
                machine,
                nbytes,
                n_rounds,
                collectives=CollectiveConfig(allreduce=algo),
                compute_mode="modeled",
            )
            measured[(algo, p)] = float(np.mean(run.results))
            expected[(algo, p)] = cost.expected_allreduce(algo, p, nbytes)
    return A2Result(
        nbytes=nbytes, procs=list(procs), measured=measured, expected=expected
    )


# ---------------------------------------------------------------------------
# EXP-A3 — communication share and bytes on the wire.

@dataclass
class A3Result:
    n_items: int
    n_classes: int
    n_cycles: int
    procs: list[int]
    comm_fraction: list[float]
    bytes_per_cycle_per_rank: list[float]

    def render(self) -> str:
        rows = [
            (
                p,
                f"{self.comm_fraction[i] * 100:.2f}%",
                f"{self.bytes_per_cycle_per_rank[i]:.0f}",
            )
            for i, p in enumerate(self.procs)
        ]
        return format_table(
            ["procs", "comm share of elapsed", "bytes/cycle/rank"],
            rows,
            title=(
                "A3 — communication share (paper: 'the amount of data "
                "exchanged ... is not so large') — "
                f"{self.n_items} tuples, J={self.n_classes}"
            ),
        )


def ablation_comm_share(
    n_items: int = 10_000,
    n_classes: int = 8,
    n_cycles: int = 5,
    procs: tuple[int, ...] = (2, 4, 6, 8, 10),
    seed: int = 2000,
    mode: str = "counted",
    comm_scale: float = 1.0,
) -> A3Result:
    """EXP-A3: how much of a cycle is communication, and how many bytes."""
    db = make_paper_database(n_items, seed=seed)
    fractions, bytes_per = [], []
    for p in procs:
        run = run_spmd_sim(
            variant_program,
            p,
            calibrated_machine(p, comm_scale=comm_scale),
            db,
            n_classes,
            n_cycles,
            seed,
            "pautoclass",
            compute_mode=_compute_mode(mode),
        )
        fractions.append(run.comm_fraction)
        # +1 cycle: the init's combined Allreduce.
        bytes_per.append(run.total_bytes / p / (n_cycles + 1))
    return A3Result(
        n_items=n_items,
        n_classes=n_classes,
        n_cycles=n_cycles,
        procs=list(procs),
        comm_fraction=fractions,
        bytes_per_cycle_per_rank=bytes_per,
    )


# ---------------------------------------------------------------------------
# EXP-A4 — parameter-reduction granularity (packed vs the paper's loops).

@dataclass
class A4Result:
    n_items: int
    n_classes: int
    procs: list[int]
    elapsed_packed: list[float]
    elapsed_per_term_class: list[float]

    def overhead(self, p: int) -> float:
        """per-term-class time / packed time at ``p`` processors."""
        i = self.procs.index(p)
        return self.elapsed_per_term_class[i] / self.elapsed_packed[i]

    def render(self) -> str:
        rows = [
            (
                p,
                f"{self.elapsed_packed[i]:.4f}",
                f"{self.elapsed_per_term_class[i]:.4f}",
                f"{self.overhead(p):.2f}x",
            )
            for i, p in enumerate(self.procs)
        ]
        return format_table(
            ["procs", "packed (s)", "per-term-class (s)", "overhead"],
            rows,
            title=(
                "A4 — one packed Allreduce per M-step vs the paper's "
                "Figure-5 per-(class, attribute) Allreduces — "
                f"{self.n_items} tuples, J={self.n_classes}"
            ),
        )


def ablation_granularity(
    n_items: int = 10_000,
    n_classes: int = 8,
    n_cycles: int = 5,
    procs: tuple[int, ...] = (2, 4, 8, 10),
    seed: int = 2000,
    mode: str = "counted",
    comm_scale: float = 1.0,
) -> A4Result:
    """EXP-A4: what the paper's loop-level Allreduce structure costs."""
    db = make_paper_database(n_items, seed=seed)
    out: dict[str, list[float]] = {"packed": [], "per_term_class": []}
    for p in procs:
        machine = calibrated_machine(p, comm_scale=comm_scale)
        for granularity, acc in out.items():
            run = run_spmd_sim(
                granularity_program,
                p,
                machine,
                db,
                n_classes,
                n_cycles,
                seed,
                granularity,
                compute_mode=_compute_mode(mode),
            )
            acc.append(run.elapsed)
    return A4Result(
        n_items=n_items,
        n_classes=n_classes,
        procs=list(procs),
        elapsed_packed=out["packed"],
        elapsed_per_term_class=out["per_term_class"],
    )


# ---------------------------------------------------------------------------
# EXP-A5 — interconnect topology ablation.

@dataclass
class A5Result:
    n_items: int
    n_classes: int
    n_procs: int
    #: elapsed[(regime, topology_name)] virtual seconds; regimes are
    #: "effective_mpi" (the paper's software-dominated latency) and
    #: "store_and_forward" (per-hop-dominated routing).
    elapsed: dict[tuple[str, str], float]

    def regime(self, name: str) -> dict[str, float]:
        return {t: v for (r, t), v in self.elapsed.items() if r == name}

    def spread(self, regime: str) -> float:
        """max/min elapsed across topologies under one regime."""
        values = list(self.regime(regime).values())
        return max(values) / min(values)

    def render(self) -> str:
        eff = self.regime("effective_mpi")
        saf = self.regime("store_and_forward")
        rows = [
            (
                name,
                f"{eff[name]:.4f}",
                f"{eff[name] / eff['fat_tree']:.3f}x",
                f"{saf[name]:.4f}",
                f"{saf[name] / saf['fat_tree']:.3f}x",
            )
            for name in sorted(eff, key=lambda n: saf[n])
        ]
        return format_table(
            ["topology", "MPI-latency (s)", "vs fat tree",
             "store-and-fwd (s)", "vs fat tree"],
            rows,
            title=(
                f"A5 — interconnect topologies at P={self.n_procs} — "
                f"{self.n_items} tuples, J={self.n_classes} "
                "(left: the paper's software-dominated regime; right: "
                "per-hop-dominated routing)"
            ),
        )


def ablation_topology(
    n_items: int = 10_000,
    n_classes: int = 8,
    n_cycles: int = 3,
    n_procs: int = 10,
    seed: int = 2000,
    mode: str = "counted",
    comm_scale: float = 1.0,
) -> A5Result:
    """EXP-A5: how much does the CS-2's fat tree matter vs alternatives?

    Latency per message = base + hops x per_hop, so topologies differ
    through their hop structure.  With the CS-2's software-dominated
    effective latency the spread is small — evidence for the paper's
    'portable to various MIMD machines' claim; with raw hardware
    latencies the spread is the classic topology story.
    """
    from repro.harness.programs import variant_program as _prog
    from repro.simnet.topology import Crossbar, FatTree, Hypercube, Mesh2D, Ring

    import dataclasses

    db = make_paper_database(n_items, seed=seed)
    topologies = {
        "fat_tree": FatTree(n_procs, arity=4),
        "crossbar": Crossbar(n_procs),
        "hypercube": Hypercube(n_procs),
        "mesh_2d": Mesh2D(n_procs),
        "ring": Ring(n_procs),
    }
    base = calibrated_machine(n_procs, comm_scale=comm_scale)
    regimes = {
        "effective_mpi": base,
        # Early-multicomputer store-and-forward: tiny base latency, the
        # route's hops carry the cost.
        "store_and_forward": dataclasses.replace(
            base,
            latency=2e-6 * comm_scale,
            per_hop=400e-6 * comm_scale,
        ),
    }
    elapsed: dict[tuple[str, str], float] = {}
    for regime_name, machine0 in regimes.items():
        for name, topo in topologies.items():
            machine = machine0.with_topology(topo)
            run = run_spmd_sim(
                _prog,
                n_procs,
                machine,
                db,
                n_classes,
                n_cycles,
                seed,
                "pautoclass",
                compute_mode=_compute_mode(mode),
            )
            elapsed[(regime_name, name)] = run.elapsed
    return A5Result(
        n_items=n_items,
        n_classes=n_classes,
        n_procs=n_procs,
        elapsed=elapsed,
    )


# ---------------------------------------------------------------------------
# EXP-B1 — baseline comparison: P-AutoClass vs parallel k-means.

@dataclass
class B1Result:
    n_items: int
    n_clusters: int
    procs: list[int]
    sec_per_iter_kmeans: list[float]
    sec_per_cycle_pautoclass: list[float]

    def speedup(self, which: str) -> list[float]:
        times = (
            self.sec_per_iter_kmeans
            if which == "kmeans"
            else self.sec_per_cycle_pautoclass
        )
        return [times[0] / t for t in times]

    def render(self) -> str:
        rows = []
        km_sp = self.speedup("kmeans")
        pa_sp = self.speedup("pautoclass")
        for i, p in enumerate(self.procs):
            rows.append(
                (
                    p,
                    f"{self.sec_per_cycle_pautoclass[i]:.4f}",
                    f"{pa_sp[i]:.2f}",
                    f"{self.sec_per_iter_kmeans[i]:.4f}",
                    f"{km_sp[i]:.2f}",
                )
            )
        return format_table(
            ["procs", "P-AutoClass s/cycle", "speedup",
             "k-means s/iter", "speedup"],
            rows,
            title=(
                "B1 — per-iteration cost: P-AutoClass vs parallel k-means "
                f"(Stoffel & Belkoniene pattern) — {self.n_items} tuples, "
                f"k=J={self.n_clusters}"
            ),
        )


def baseline_kmeans_comparison(
    n_items: int = 10_000,
    n_clusters: int = 8,
    n_measure: int = 5,
    procs: tuple[int, ...] = (1, 2, 4, 8, 10),
    seed: int = 2000,
    mode: str = "counted",
    comm_scale: float = 1.0,
) -> B1Result:
    """EXP-B1: the same SPMD pattern on a much lighter kernel.

    K-means' E-step is ~10x cheaper per (item x class) than AutoClass's
    Bayesian weighting, while its per-iteration communication is similar
    — so k-means hits the communication wall at lower processor counts.
    P-AutoClass's heavier compute is exactly why the paper's approach
    scales: there is more work to amortize each Allreduce over.
    """
    from repro.harness.programs import kmeans_program, scaleup_program

    db = make_paper_database(n_items, seed=seed)
    km_times, pa_times = [], []
    for p in procs:
        machine = calibrated_machine(p, comm_scale=comm_scale)
        km = run_spmd_sim(
            kmeans_program,
            p,
            machine,
            db,
            n_clusters,
            n_measure,
            seed,
            compute_mode=_compute_mode(mode),
        )
        km_times.append(float(np.max(km.results)))
        pa = run_spmd_sim(
            scaleup_program,
            p,
            machine,
            db,
            n_clusters,
            n_measure,
            seed,
            compute_mode=_compute_mode(mode),
        )
        marks = np.max(np.array(pa.results), axis=0)
        pa_times.append(float(np.diff(marks).mean()))
    return B1Result(
        n_items=n_items,
        n_clusters=n_clusters,
        procs=list(procs),
        sec_per_iter_kmeans=km_times,
        sec_per_cycle_pautoclass=pa_times,
    )


# ---------------------------------------------------------------------------
# EXP-OBS — instrumented phase breakdown through the observability layer.

@dataclass
class ObsResult:
    """EXP-OBS: one instrumented fit and its merged run record."""

    n_items: int
    n_classes: int
    record: "object"  # repro.obs.record.RunRecord

    def render(self) -> str:
        from repro.obs.report import render_run

        head = (
            "OBS — instrumented phase breakdown "
            f"({self.n_items} tuples, J={self.n_classes}; "
            "repro.obs record, same schema on every backend)"
        )
        return head + "\n\n" + render_run(self.record)


def obs_phase_breakdown(
    scale: ExperimentScale | None = None,
    n_processors: int = 4,
    backend: str = "threads",
    n_classes: int = 8,
    instrument: str = "phases",
) -> ObsResult:
    """EXP-OBS: per-rank compute vs Allreduce split on a real backend.

    Runs one P-AutoClass fit with ``instrument="phases"`` (default) on
    the ``threads`` world and renders the paper-style Tables 2/3-shaped
    breakdown from the merged :class:`~repro.obs.record.RunRecord` —
    the same report the ``sim`` backend produces in virtual seconds.
    """
    from repro.api import PAutoClass

    scale = scale or ExperimentScale.from_env()
    n_items = max(400, scale.sizes[0])
    db = make_paper_database(n_items, seed=scale.seed)
    pac = PAutoClass(
        n_processors=n_processors,
        backend=backend,
        instrument=instrument,
        start_j_list=(n_classes,),
        max_n_tries=1,
        seed=scale.seed,
        max_cycles=max(scale.cycles_per_try, 3),
    )
    run = pac.fit(db)
    assert run.record is not None
    return ObsResult(
        n_items=n_items, n_classes=n_classes, record=run.record
    )


# ---------------------------------------------------------------------------
# EXP-FAULT — checkpointed recovery from an injected rank failure.

@dataclass
class FaultRecoveryResult:
    """EXP-FAULT: a fault-injected fit vs its clean reference."""

    n_items: int
    n_processors: int
    backend: str
    fault: "object"          # repro.mpc.faults.FaultSpec
    restarts: int
    clean_score: float
    recovered_score: float
    n_checkpoint_saves: int

    @property
    def identical(self) -> bool:
        return self.recovered_score == self.clean_score

    def render(self) -> str:
        f = self.fault
        lines = [
            "FAULT — checkpointed recovery from an injected rank failure "
            f"({self.n_items} tuples, {self.n_processors} ranks, "
            f"{self.backend} world)",
            "",
            f"  injected: rank {f.rank} {f.action} at try {f.at_try}, "
            f"cycle {f.at_cycle}",
            f"  restarts needed:     {self.restarts}",
            f"  checkpoint saves:    {self.n_checkpoint_saves}",
            f"  clean logP(X|T)~:    {self.clean_score:.6f}",
            f"  recovered logP(X|T)~:{self.recovered_score:.6f}",
            f"  bit-identical:       {'yes' if self.identical else 'NO'}",
        ]
        return "\n".join(lines)


def fault_recovery_demo(
    scale: ExperimentScale | None = None,
    n_processors: int = 2,
    backend: str = "processes",
    action: str = "exit",
) -> FaultRecoveryResult:
    """EXP-FAULT: lose a rank mid-search, restart from checkpoint.

    Runs the same fit twice on the ``processes`` world: once cleanly,
    once with a :class:`~repro.mpc.faults.FaultSpec` hard-killing a rank
    mid-try.  The faulted fit restarts from its ``per_cycle`` checkpoint
    (``max_restarts``) and must land on the *bit-identical*
    classification — the paper's deterministic replicated control flow
    is what makes that possible.
    """
    import tempfile

    from repro.api import PAutoClass
    from repro.mpc.faults import FaultInjector, FaultSpec

    scale = scale or ExperimentScale.from_env()
    n_items = max(300, scale.sizes[0] // 2)
    db = make_paper_database(n_items, seed=scale.seed)
    config = dict(
        start_j_list=(4,),
        max_n_tries=1,
        seed=scale.seed,
        max_cycles=max(scale.cycles_per_try, 4),
        init_method="sharp",
    )
    clean = PAutoClass(
        n_processors=n_processors, backend=backend, **config
    ).fit(db)
    spec = FaultSpec(
        rank=n_processors - 1, action=action, site="cycle",
        at_try=0, at_cycle=2,
    )
    with tempfile.TemporaryDirectory() as ckpt_dir:
        pac = PAutoClass(
            n_processors=n_processors, backend=backend,
            instrument="phases", **config,
        )
        run = pac.fit(
            db,
            checkpoint="per_cycle",
            checkpoint_dir=ckpt_dir,
            max_restarts=2,
            faults=FaultInjector(spec),
        )
    assert run.record is not None
    saves = run.record.ranks[0].counters.get("ckpt_saves", 0)
    return FaultRecoveryResult(
        n_items=n_items,
        n_processors=n_processors,
        backend=backend,
        fault=spec,
        restarts=run.restarts,
        clean_score=clean.best.score,
        recovered_score=run.best.score,
        n_checkpoint_saves=saves,
    )


# ---------------------------------------------------------------------------
# EXP-SPLIT — two-level try-parallel search over sub-communicators.

@dataclass
class SplitScalingResult:
    """EXP-SPLIT: the same seeded search at several try-group counts."""

    n_items: int
    n_tries: int
    n_processors: int
    group_counts: list[int]
    elapsed_s: list[float]
    best_scores: list[float]

    def render(self) -> str:
        head = (
            "SPLIT — try-parallel BIG_LOOP over sub-communicators "
            f"({self.n_items} tuples, {self.n_tries} tries, "
            f"{self.n_processors}-rank virtual CS-2)"
        )
        t_ref = self.elapsed_s[0]
        rows = [
            (g, f"{t:.4f}", f"{t_ref / t:.2f}", f"{s:.4f}")
            for g, t, s in zip(
                self.group_counts, self.elapsed_s, self.best_scores
            )
        ]
        table = format_table(
            ["groups", "virtual elapsed (s)", "speedup vs G=1",
             "best logP(X|T)~"],
            rows,
        )
        note = (
            "each try runs data-parallel inside its group and is "
            "bitwise identical to a dedicated world of the group's "
            "size; groups differ only in reduction order."
        )
        return head + "\n\n" + table + "\n\n" + note


def split_group_scaling(
    scale: ExperimentScale | None = None,
    n_processors: int = 8,
    group_counts: tuple[int, ...] = (1, 2, 4),
) -> SplitScalingResult:
    """EXP-SPLIT: group-parallel tries shrink the search's critical path.

    Runs one seeded multi-J search on the virtual CS-2 at several
    ``try_groups`` settings.  With G groups, G tries run concurrently
    (each on P/G ranks), so per-cycle Allreduces span fewer ranks and
    the tries' cycle times overlap instead of serializing — the
    elapsed-time win the two-level scheme exists for.
    """
    from repro.api import PAutoClass

    scale = scale or ExperimentScale.from_env()
    n_items = max(240, scale.sizes[0] // 4)
    db = make_paper_database(n_items, seed=scale.seed)
    config = dict(
        start_j_list=(2, 3, 4, 5),
        max_n_tries=4,
        seed=scale.seed,
        max_cycles=max(scale.cycles_per_try, 3),
    )
    elapsed: list[float] = []
    scores: list[float] = []
    for g in group_counts:
        run = PAutoClass(
            n_processors=n_processors, backend="sim", try_groups=g, **config
        ).fit(db)
        assert run.sim_elapsed is not None
        elapsed.append(run.sim_elapsed)
        scores.append(run.best.score)
    return SplitScalingResult(
        n_items=n_items,
        n_tries=config["max_n_tries"],
        n_processors=n_processors,
        group_counts=list(group_counts),
        elapsed_s=elapsed,
        best_scores=scores,
    )


# ---------------------------------------------------------------------------
# EXP-SERVE — micro-batched scoring throughput vs a single-item loop.

@dataclass
class ServeThroughputResult:
    """EXP-SERVE: the same request stream, itemwise vs micro-batched."""

    n_train: int
    n_requests: int
    n_classes: int
    max_batch: int
    n_workers: int
    single_elapsed_s: float
    batched_elapsed_s: float
    mean_batch_items: float

    @property
    def speedup(self) -> float:
        return self.single_elapsed_s / self.batched_elapsed_s

    @property
    def single_items_per_s(self) -> float:
        return self.n_requests / self.single_elapsed_s

    @property
    def batched_items_per_s(self) -> float:
        return self.n_requests / self.batched_elapsed_s

    def render(self) -> str:
        head = (
            "SERVE — micro-batched scoring throughput "
            f"({self.n_requests} single-item requests against a "
            f"J={self.n_classes} model fitted on {self.n_train} tuples)"
        )
        rows = [
            ("single-item loop", f"{self.single_elapsed_s:.4f}",
             f"{self.single_items_per_s:,.0f}", "1.0"),
            (f"Scorer (max_batch={self.max_batch})",
             f"{self.batched_elapsed_s:.4f}",
             f"{self.batched_items_per_s:,.0f}",
             f"{self.speedup:.1f}"),
        ]
        table = format_table(
            ["mode", "elapsed (s)", "items/s", "speedup"], rows
        )
        note = (
            f"mean items per executed batch: {self.mean_batch_items:.1f}; "
            "the win is per-call overhead amortization — one fused "
            "E-step pass over the coalesced batch instead of one per "
            "request."
        )
        return head + "\n\n" + table + "\n\n" + note


def serve_throughput_demo(
    scale: ExperimentScale | None = None,
    n_requests: int = 1024,
    max_batch: int = 64,
    n_workers: int = 1,
    n_classes: int = 4,
) -> ServeThroughputResult:
    """EXP-SERVE: dynamic batching amortizes per-request scoring cost.

    Fits a small model, exports it as a :class:`repro.serve.FittedModel`,
    then scores the same stream of single-item requests two ways: a
    plain ``predict`` loop (one kernel pass per item) and a
    :class:`repro.serve.Scorer` draining a pre-filled queue (one kernel
    pass per coalesced batch).  The queue is filled before the workers
    start so the measurement is the steady-state backlog case — the
    regime micro-batching exists for.
    """
    from repro.api import AutoClass
    from repro.serve import Scorer, ScorerConfig

    scale = scale or ExperimentScale.from_env()
    n_train = max(400, scale.sizes[0])
    db = make_paper_database(n_train, seed=scale.seed)
    run = AutoClass(
        start_j_list=(n_classes,), max_n_tries=1, seed=scale.seed,
        max_cycles=max(scale.cycles_per_try, 3),
    ).fit(db)
    model = run.fitted(db)
    requests = [
        db.take(slice(i % n_train, i % n_train + 1))
        for i in range(n_requests)
    ]

    t0 = time.perf_counter()
    for r in requests:
        model.predict(r)
    single_elapsed = time.perf_counter() - t0

    config = ScorerConfig(
        max_batch=max_batch, n_workers=n_workers,
        queue_items=n_requests,
    )
    scorer = Scorer(model, config, start=False)
    pending = [scorer.submit(r) for r in requests]
    t0 = time.perf_counter()
    scorer.start()
    for p in pending:
        p.result()
    batched_elapsed = time.perf_counter() - t0
    mean_batch = scorer.metrics.mean_batch_items
    scorer.close()

    return ServeThroughputResult(
        n_train=n_train,
        n_requests=n_requests,
        n_classes=n_classes,
        max_batch=max_batch,
        n_workers=n_workers,
        single_elapsed_s=single_elapsed,
        batched_elapsed_s=batched_elapsed,
        mean_batch_items=mean_batch,
    )
