"""Experiment definitions: the paper's settings and their scaled defaults.

The paper's evaluation (section 4):

* machine: Meiko CS-2, 1–10 processors;
* data: synthetic, two real attributes, 5 000 → 100 000 tuples
  (seven sizes; the intermediates were lost in the available source
  scan — see DESIGN.md — so this reproduction uses an even spread);
* search: ``start_j_list = 2, 4, 8, 16, 24, 50, 64``, each
  classification repeated 10 times and averaged;
* scaleup: 10 000 tuples *per processor*, J = 8 and 16, time per
  ``base_cycle`` iteration.

Running the full paper workload through a Python engine on one host
core takes hours, so every experiment accepts an
:class:`ExperimentScale` that shrinks sizes and the J list while
preserving every ratio the figures are about (times are linear in
items and classes, which EXP-T2 itself verifies).  Benchmarks default
to a small scale and honor ``REPRO_BENCH_SCALE`` (a float; ``1.0`` = the
paper's full workload).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.engine.search import PAPER_START_J_LIST

#: Figure 6/7 dataset sizes (endpoints are the paper's; intermediates
#: evenly spread — the source scan lost the exact values).
PAPER_SIZES = (5_000, 10_000, 20_000, 40_000, 60_000, 80_000, 100_000)

#: Processor counts of every figure.
PAPER_PROCS = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10)

#: Figure 8's per-processor load and cluster counts.
PAPER_SCALEUP_TUPLES_PER_PROC = 10_000
PAPER_SCALEUP_J = (8, 16)

#: Environment knob read by the benchmark suite.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"
DEFAULT_BENCH_SCALE = 0.04


@dataclass(frozen=True)
class ExperimentScale:
    """Shrink factor applied to the paper's workload sizes.

    ``factor=1.0`` reproduces the paper's exact parameters;
    ``factor=0.04`` (the benchmark default) divides item counts by 25
    and trims the J list, keeping every curve's shape.
    """

    factor: float = DEFAULT_BENCH_SCALE
    #: EM cycles charged per classification try.  The paper measures
    #: full convergence; fixed cycle counts keep timing workloads
    #: deterministic and comparable across P (convergence itself is
    #: P-independent — the equivalence tests prove identical cycle
    #: counts — so elapsed time is proportional either way).
    cycles_per_try: int = 5
    #: Repetitions to average (the paper used 10).
    n_reps: int = 1
    seed: int = 2000  # IPPS 2000

    def __post_init__(self) -> None:
        if not 0 < self.factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {self.factor}")
        if self.cycles_per_try < 1:
            raise ValueError("cycles_per_try must be >= 1")
        if self.n_reps < 1:
            raise ValueError("n_reps must be >= 1")

    @staticmethod
    def from_env() -> "ExperimentScale":
        """Scale from ``REPRO_BENCH_SCALE`` (default 0.04)."""
        raw = os.environ.get(SCALE_ENV_VAR, "")
        factor = float(raw) if raw else DEFAULT_BENCH_SCALE
        return ExperimentScale(factor=factor)

    @property
    def sizes(self) -> tuple[int, ...]:
        """Figure 6/7 dataset sizes at this scale (min 100 items)."""
        return tuple(max(100, round(s * self.factor)) for s in PAPER_SIZES)

    @property
    def procs(self) -> tuple[int, ...]:
        return PAPER_PROCS

    @property
    def start_j_list(self) -> tuple[int, ...]:
        """The paper's J list, trimmed at small scales.

        Below half scale the 50- and 64-class tries are dropped: with a
        few thousand items they would mostly fit empty classes while
        dominating runtime.
        """
        if self.factor >= 0.5:
            return PAPER_START_J_LIST
        return tuple(j for j in PAPER_START_J_LIST if j <= 24)

    @property
    def scaleup_tuples_per_proc(self) -> int:
        return max(100, round(PAPER_SCALEUP_TUPLES_PER_PROC * self.factor))

    @property
    def scaleup_j(self) -> tuple[int, ...]:
        return PAPER_SCALEUP_J

    def describe(self) -> str:
        return (
            f"scale={self.factor:g} sizes={self.sizes} "
            f"J={self.start_j_list} cycles/try={self.cycles_per_try} "
            f"reps={self.n_reps}"
        )
