"""Experiment harness: regenerates every figure and text claim.

Per-experiment index in DESIGN.md; the benchmark files under
``benchmarks/`` are thin wrappers over these functions, so every result
is also reproducible interactively::

    from repro.harness import fig7_speedup, ExperimentScale
    print(fig7_speedup(ExperimentScale(0.1)).render())
"""

from repro.harness.experiments import (
    PAPER_PROCS,
    PAPER_SIZES,
    PAPER_START_J_LIST,
    ExperimentScale,
)
from repro.harness.runner import (
    ablation_collectives,
    ablation_comm_share,
    ablation_granularity,
    ablation_topology,
    ablation_variants,
    baseline_kmeans_comparison,
    fault_recovery_demo,
    fig6_elapsed,
    fig7_speedup,
    fig8_scaleup,
    obs_phase_breakdown,
    serve_throughput_demo,
    split_group_scaling,
    t1_profile,
    t2_linear_sequential,
)

__all__ = [
    "ExperimentScale",
    "PAPER_PROCS",
    "PAPER_SIZES",
    "PAPER_START_J_LIST",
    "ablation_collectives",
    "ablation_comm_share",
    "ablation_granularity",
    "ablation_topology",
    "ablation_variants",
    "baseline_kmeans_comparison",
    "fault_recovery_demo",
    "fig6_elapsed",
    "fig7_speedup",
    "fig8_scaleup",
    "obs_phase_breakdown",
    "serve_throughput_demo",
    "split_group_scaling",
    "t1_profile",
    "t2_linear_sequential",
]
