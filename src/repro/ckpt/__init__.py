"""``repro.ckpt`` — checkpoint/restart for long P-AutoClass searches.

The paper's BIG_LOOP converges many tries over many EM cycles; on a
real multicomputer a single rank failure would throw the whole search
away.  This package captures the search state at the two Allreduce cut
points (where it is global and identical on every rank) in a
versioned, atomically written file, and restores it such that a
resumed run is **bit-identical** to an uninterrupted one.

See :mod:`repro.ckpt.format` for the file format and guarantees,
:mod:`repro.ckpt.manager` for policies and the rank-0-writes /
all-ranks-restore protocol, and ``docs/fault_tolerance.md`` for the
cookbook.
"""

from repro.ckpt.format import (
    CKPT_FORMAT_VERSION,
    CheckpointError,
    CheckpointState,
    InProgressTry,
    atomic_write_json,
    checkpoint_key,
    decode_checkpoint,
    encode_checkpoint,
    read_checkpoint_file,
)
from repro.ckpt.manager import (
    CHECKPOINT_POLICIES,
    CKPT_FILENAME,
    Checkpointer,
    CheckpointSpec,
    check_policy,
)

__all__ = [
    "CKPT_FORMAT_VERSION",
    "CKPT_FILENAME",
    "CHECKPOINT_POLICIES",
    "CheckpointError",
    "CheckpointSpec",
    "CheckpointState",
    "Checkpointer",
    "InProgressTry",
    "atomic_write_json",
    "check_policy",
    "checkpoint_key",
    "decode_checkpoint",
    "encode_checkpoint",
    "read_checkpoint_file",
]
