"""Checkpoint policy + IO orchestration for the search loops.

A :class:`Checkpointer` owns one checkpoint file and a write policy.
The SPMD contract is **rank 0 writes, all ranks restore**: every rank
holds a Checkpointer for the same path, but only the writer rank
serializes state (the state is identical on every rank at a cut point,
so one copy is enough); at resume time every rank reads the same file
and therefore starts from byte-identical state — no broadcast needed.

Policies (:data:`CHECKPOINT_POLICIES`):

* ``"off"``       — never write (the null object; loops stay branchless);
* ``"per_try"``   — write at try boundaries only (cheapest, the
  recommended default: a restart repeats at most one try);
* ``"per_cycle"`` — additionally write after every ``cycle_interval``
  EM cycles (a restart repeats at most ``cycle_interval`` cycles).

Writes are counted through the ambient :mod:`repro.obs` recorder
(``ckpt_saves`` counter) so instrumented runs show their checkpoint
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.ckpt.format import (
    CheckpointState,
    InProgressTry,
    atomic_write_json,
    checkpoint_key,
    decode_checkpoint,
    decode_try_checkpoint,
    encode_checkpoint,
    encode_try_checkpoint,
    read_checkpoint_file,
)
from repro.engine.search import SearchConfig, SearchResult
from repro.models.registry import ModelSpec
from repro.obs import recorder as obs
from repro.util.rng import SeedSequenceStream

#: Valid ``checkpoint=`` policies of the fit APIs.
CHECKPOINT_POLICIES = ("off", "per_try", "per_cycle")

#: Default checkpoint file name inside a checkpoint directory.
CKPT_FILENAME = "ckpt.json"


def check_policy(policy: str) -> str:
    """Validate a ``checkpoint=`` argument."""
    if policy not in CHECKPOINT_POLICIES:
        raise ValueError(
            f"checkpoint policy {policy!r} not in {CHECKPOINT_POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class CheckpointSpec:
    """Picklable description of a checkpoint setup.

    This is what crosses process boundaries (the ``processes`` world
    pickles the SPMD entry's arguments); each rank materializes its own
    :class:`Checkpointer` from it via :meth:`build`.
    """

    directory: str
    policy: str = "per_try"
    resume: bool = True
    cycle_interval: int = 1
    filename: str = CKPT_FILENAME

    def __post_init__(self) -> None:
        check_policy(self.policy)
        if self.policy == "off":
            raise ValueError("CheckpointSpec with policy 'off' is pointless; "
                             "pass checkpointer=None instead")
        if self.cycle_interval < 1:
            raise ValueError(
                f"cycle_interval must be >= 1, got {self.cycle_interval}"
            )

    def build(self, rank: int = 0) -> "Checkpointer":
        return Checkpointer(
            self.directory,
            policy=self.policy,
            resume=self.resume,
            cycle_interval=self.cycle_interval,
            rank=rank,
            filename=self.filename,
        )


class Checkpointer:
    """One search's checkpoint file, with rank-0-writes semantics."""

    def __init__(
        self,
        directory: str | Path,
        *,
        policy: str = "per_try",
        resume: bool = True,
        cycle_interval: int = 1,
        rank: int = 0,
        filename: str = CKPT_FILENAME,
    ) -> None:
        check_policy(policy)
        if policy == "off":
            raise ValueError(
                "Checkpointer(policy='off') is pointless; pass None instead"
            )
        if cycle_interval < 1:
            raise ValueError(
                f"cycle_interval must be >= 1, got {cycle_interval}"
            )
        self.directory = Path(directory)
        self.policy = policy
        self.resume = resume
        self.cycle_interval = cycle_interval
        self.rank = rank
        self.path = self.directory / filename
        self._key: str | None = None
        self.n_saves = 0

    # -- binding -----------------------------------------------------------

    @property
    def is_writer(self) -> bool:
        return self.rank == 0

    def bind(
        self, config: SearchConfig, spec: ModelSpec, n_total_items: int,
        data_digest: str | None = None,
    ) -> None:
        """Fix the resume-safety key for this search (call before use).

        ``data_digest`` (streamed fits: the shard manifest digest)
        keys the checkpoint to the dataset as well, so resuming a
        streamed search against different shards is refused.
        """
        self._key = checkpoint_key(
            config, spec, n_total_items, data_digest=data_digest
        )

    def _require_key(self) -> str:
        if self._key is None:
            raise RuntimeError("Checkpointer.bind() must be called first")
        return self._key

    # -- restore (all ranks) ----------------------------------------------

    def load(self, spec: ModelSpec) -> CheckpointState | None:
        """Read + validate the checkpoint; None when absent or resume=False.

        A present-but-corrupt file raises
        :class:`~repro.ckpt.format.CheckpointError` — a half-written
        temp file can never be picked up because writes are atomic.
        """
        key = self._require_key()
        if not self.resume or not self.path.exists():
            return None
        payload = read_checkpoint_file(self.path)
        return decode_checkpoint(payload, key, spec)

    # -- save (rank 0 only) ------------------------------------------------

    def save(
        self,
        result: SearchResult,
        stream: SeedSequenceStream,
        in_progress: InProgressTry | None = None,
    ) -> None:
        """Atomically persist the search state (no-op off the writer rank)."""
        if not self.is_writer:
            return
        payload = encode_checkpoint(
            self._require_key(), result, in_progress, stream.state_dict()
        )
        atomic_write_json(payload, self.path)
        self.n_saves += 1
        obs.current().count("ckpt_saves")

    def save_boundary(self, result: SearchResult, stream: SeedSequenceStream) -> None:
        """Per-try cut point: all recorded tries are complete."""
        self.save(result, stream, in_progress=None)

    def save_cycle(
        self,
        result: SearchResult,
        stream: SeedSequenceStream,
        *,
        try_index: int,
        n_classes_requested: int,
        clf,
        checker,
    ) -> None:
        """Per-cycle cut point: freeze the in-progress try's EM state.

        No-op unless the policy asks for a save at this cycle.  ``clf``
        is the post-cycle classification (``clf.n_cycles`` is the
        1-based cycle count within the try) and ``checker`` the live
        convergence checker whose history *includes* this cycle's score.
        """
        if not self.want_cycle_save(clf.n_cycles):
            return
        self.save(
            result,
            stream,
            in_progress=InProgressTry(
                try_index=try_index,
                n_classes_requested=n_classes_requested,
                classification=clf,
                checker_history=list(checker.history),
            ),
        )

    # -- per-try files (group-parallel search) -----------------------------
    #
    # A try-parallel search (``try_groups > 1``) has no single writer for
    # a monotone completed-tries list — groups finish tries in
    # independent orders.  Instead, *each group's leader* persists its
    # own tries, one file per try.  These methods are deliberately not
    # gated on ``is_writer`` (a world-rank-0 notion): the caller gates on
    # the group-leader rank of its sub-communicator.

    def try_path(self, try_index: int) -> Path:
        """Path of try ``try_index``'s own checkpoint file."""
        return self.directory / f"try_{try_index:04d}.json"

    def save_try(self, try_result) -> None:
        """Persist one completed try (called by its group's leader)."""
        payload = encode_try_checkpoint(
            self._require_key(), try_result=try_result
        )
        atomic_write_json(payload, self.try_path(try_result.try_index))
        self.n_saves += 1
        obs.current().count("ckpt_saves")

    def save_try_cycle(
        self, *, try_index: int, n_classes_requested: int, clf, checker
    ) -> None:
        """Per-cycle cut point of a group-owned try (leader only).

        Same policy gate as :meth:`save_cycle`; the in-progress state
        overwrites the try's file and is replaced by the completed
        result when the try converges.
        """
        if not self.want_cycle_save(clf.n_cycles):
            return
        payload = encode_try_checkpoint(
            self._require_key(),
            in_progress=InProgressTry(
                try_index=try_index,
                n_classes_requested=n_classes_requested,
                classification=clf,
                checker_history=list(checker.history),
            ),
        )
        atomic_write_json(payload, self.try_path(try_index))
        self.n_saves += 1
        obs.current().count("ckpt_saves")

    def load_tries(
        self, spec: ModelSpec
    ) -> tuple[dict, dict]:
        """Read every per-try checkpoint file in the directory.

        Returns ``(completed, in_progress)`` — both keyed by try index.
        The search key is validated per file; a file from a different
        search raises.  Because the key excludes world size *and* group
        count, a resume may use any ``try_groups``: completed tries are
        skipped by whichever group they are reassigned to.
        """
        completed: dict[int, object] = {}
        partial: dict[int, InProgressTry] = {}
        if not self.resume or not self.directory.exists():
            return completed, partial
        key = self._require_key()
        for path in sorted(self.directory.glob("try_*.json")):
            payload = read_checkpoint_file(path)
            try_result, in_progress = decode_try_checkpoint(payload, key, spec)
            if try_result is not None:
                completed[try_result.try_index] = try_result
            elif in_progress is not None:
                partial[in_progress.try_index] = in_progress
        return completed, partial

    # -- policy ------------------------------------------------------------

    def want_cycle_save(self, cycle_index: int) -> bool:
        """Should the loop checkpoint after this (1-based) cycle?"""
        return (
            self.policy == "per_cycle"
            and cycle_index % self.cycle_interval == 0
        )
