"""The checkpoint file format — versioned, validated, atomic.

A checkpoint freezes the BIG_LOOP at one of its two well-defined cut
points (the same Allreduce boundaries :mod:`repro.obs` instruments):

* **per-try** — after a classification try has converged and been
  recorded (duplicate-eliminated or stored);
* **per-cycle** — after one EM ``base_cycle``, i.e. after both
  Allreduces, when parameters and scores are *global* and identical on
  every rank.

Because every decision the search takes downstream of a cut point is a
deterministic function of (a) the seed-derived RNG streams and (b) the
globally reduced scores, the captured state — completed tries with
their duplicate-elimination history, the in-progress try's parameters
+ convergence window, and the RNG stream states — is sufficient to
continue the run **bit-identically** to an uninterrupted one.  The
differential tests in ``tests/ckpt`` assert exactly that on all four
SPMD worlds.

File-level guarantees:

* **Versioned** — every file carries ``format_version``; a reader
  refuses versions it does not understand with :class:`CheckpointError`.
* **Keyed** — a digest over the search config, model spec, and global
  item count is stored and re-checked on load, so a checkpoint can
  never silently resume a *different* search.  The world size is
  deliberately *not* part of the key: the state is global, so a search
  checkpointed on P ranks may resume on Q ranks.
* **Atomic** — writes go to a same-directory temp file which is fsynced
  and then ``os.replace``d over the target, so a reader (or a rank that
  died mid-write) only ever sees a complete previous checkpoint.
* **Clean failures** — a truncated, corrupt, or mismatched file raises
  :class:`CheckpointError`, never a bare pickle/JSON/IO error.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engine.classification import Classification, Scores
from repro.engine.results_io import _decode_params, _encode_params
from repro.engine.search import SearchConfig, SearchResult, TryResult
from repro.models.registry import ModelSpec

#: Version stamped into (and required of) every checkpoint file.
CKPT_FORMAT_VERSION = 1

#: The ``kind`` marker distinguishing checkpoints from results files.
CKPT_KIND = "pautoclass-checkpoint"

#: The ``kind`` marker of per-try checkpoint files (group-parallel search).
TRY_CKPT_KIND = "pautoclass-try-checkpoint"


class CheckpointError(RuntimeError):
    """An unreadable, corrupt, truncated, or mismatched checkpoint."""


# ---------------------------------------------------------------------------
# resume-safety key

def checkpoint_key(
    config: SearchConfig, spec: ModelSpec, n_total_items: int,
    data_digest: str | None = None,
) -> str:
    """Digest identifying which search a checkpoint belongs to.

    Covers every input that determines the search trajectory: the full
    :class:`SearchConfig`, the model form (term models over attribute
    indices), and the global item count.  World size is excluded on
    purpose — resume may change it.  ``data_digest`` — the shard
    manifest digest of a streamed fit — folds the dataset identity in,
    so a resume against different shards is refused; ``None`` (plain
    in-memory fits) leaves the key unchanged from earlier versions.
    """
    spec_lines = [
        f"{term.spec_name}:{','.join(map(str, term.attribute_indices))}"
        for term in spec.terms
    ]
    key_fields = {
        "start_j_list": list(config.start_j_list),
        "max_n_tries": config.max_n_tries,
        "rel_delta": config.rel_delta,
        "n_consecutive": config.n_consecutive,
        "max_cycles": config.max_cycles,
        "init_method": config.init_method,
        "seed": config.seed,
        "duplicate_eps": config.duplicate_eps,
        "spec": spec_lines,
        "n_total_items": n_total_items,
    }
    if data_digest is not None:
        key_fields["data_digest"] = data_digest
    blob = json.dumps(key_fields, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# classification state (lean: validated against the live spec on load)

def _clf_to_dict(clf: Classification) -> dict:
    payload: dict = {
        "n_classes": clf.n_classes,
        "log_pi": clf.log_pi.tolist(),
        "term_params": [
            {"model": term.spec_name, "params": _encode_params(params)}
            for term, params in zip(clf.spec.terms, clf.term_params)
        ],
        "n_cycles": clf.n_cycles,
    }
    if clf.scores is not None:
        payload["scores"] = {
            "log_marginal_cs": clf.scores.log_marginal_cs,
            "log_lik_obs": clf.scores.log_lik_obs,
            "log_map_objective": clf.scores.log_map_objective,
            "w_j": clf.scores.w_j.tolist(),
            "n_items": clf.scores.n_items,
        }
    return payload


def _clf_from_dict(data: dict, spec: ModelSpec) -> Classification:
    entries = data["term_params"]
    if len(entries) != spec.n_terms:
        raise CheckpointError(
            f"checkpoint has {len(entries)} term-parameter blocks for a "
            f"{spec.n_terms}-term model"
        )
    term_params = []
    for term, entry in zip(spec.terms, entries):
        if entry["model"] != term.spec_name:
            raise CheckpointError(
                f"term model mismatch: live spec says {term.spec_name!r}, "
                f"checkpoint says {entry['model']!r}"
            )
        term_params.append(_decode_params(entry["model"], entry["params"]))
    scores = None
    if "scores" in data:
        s = data["scores"]
        scores = Scores(
            log_marginal_cs=s["log_marginal_cs"],
            log_lik_obs=s["log_lik_obs"],
            log_map_objective=s["log_map_objective"],
            w_j=np.asarray(s["w_j"], dtype=np.float64),
            n_items=s["n_items"],
        )
    return Classification(
        spec=spec,
        n_classes=data["n_classes"],
        log_pi=np.asarray(data["log_pi"], dtype=np.float64),
        term_params=tuple(term_params),
        scores=scores,
        n_cycles=data["n_cycles"],
    )


# ---------------------------------------------------------------------------
# search state

@dataclass
class InProgressTry:
    """EM state of a try interrupted between cycles.

    ``classification`` is the post-cycle state (parameters *and*
    scores are global at the cut point); ``checker_history`` is the
    convergence window — restoring both and re-entering the cycle loop
    is indistinguishable from never having stopped.
    """

    try_index: int
    n_classes_requested: int
    classification: Classification
    checker_history: list[float]


@dataclass
class CheckpointState:
    """Everything a checkpoint captures, decoded and validated."""

    key: str
    completed_tries: list[TryResult]
    in_progress: InProgressTry | None
    rng_streams: dict[str, dict]

    @property
    def next_try_index(self) -> int:
        return len(self.completed_tries)


def _try_to_dict(t: TryResult) -> dict:
    return {
        "try_index": t.try_index,
        "n_classes_requested": t.n_classes_requested,
        "converged": t.converged,
        "n_cycles": t.n_cycles,
        "duplicate_of": t.duplicate_of,
        "classification": _clf_to_dict(t.classification),
    }


def _try_from_dict(entry: dict, spec: ModelSpec) -> TryResult:
    return TryResult(
        try_index=entry["try_index"],
        n_classes_requested=entry["n_classes_requested"],
        classification=_clf_from_dict(entry["classification"], spec),
        converged=entry["converged"],
        n_cycles=entry["n_cycles"],
        duplicate_of=entry["duplicate_of"],
    )


def _in_progress_to_dict(ip: InProgressTry) -> dict:
    return {
        "try_index": ip.try_index,
        "n_classes_requested": ip.n_classes_requested,
        "classification": _clf_to_dict(ip.classification),
        "checker_history": list(ip.checker_history),
    }


def _in_progress_from_dict(entry: dict, spec: ModelSpec) -> InProgressTry:
    return InProgressTry(
        try_index=entry["try_index"],
        n_classes_requested=entry["n_classes_requested"],
        classification=_clf_from_dict(entry["classification"], spec),
        checker_history=[float(x) for x in entry["checker_history"]],
    )


def encode_checkpoint(
    key: str,
    result: SearchResult,
    in_progress: InProgressTry | None,
    rng_streams: dict[str, dict],
) -> dict:
    """Build the (JSON-serializable) checkpoint payload."""
    payload: dict = {
        "format_version": CKPT_FORMAT_VERSION,
        "kind": CKPT_KIND,
        "key": key,
        "completed_tries": [_try_to_dict(t) for t in result.tries],
        "in_progress": None,
        "rng_streams": rng_streams,
    }
    if in_progress is not None:
        payload["in_progress"] = _in_progress_to_dict(in_progress)
    return payload


def decode_checkpoint(
    payload: dict, key: str, spec: ModelSpec
) -> CheckpointState:
    """Validate and decode a checkpoint payload against the live search.

    Raises :class:`CheckpointError` on any structural problem, version
    drift, or key mismatch (resuming a different search).
    """
    try:
        if payload.get("kind") != CKPT_KIND:
            raise CheckpointError(
                f"not a checkpoint file (kind={payload.get('kind')!r})"
            )
        version = payload.get("format_version")
        if version != CKPT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version!r} not supported "
                f"(expected {CKPT_FORMAT_VERSION})"
            )
        if payload.get("key") != key:
            raise CheckpointError(
                "checkpoint belongs to a different search (config, model "
                "spec, or dataset changed since it was written)"
            )
        completed = [
            _try_from_dict(entry, spec)
            for entry in payload["completed_tries"]
        ]
        in_progress = None
        if payload.get("in_progress") is not None:
            in_progress = _in_progress_from_dict(payload["in_progress"], spec)
        return CheckpointState(
            key=key,
            completed_tries=completed,
            in_progress=in_progress,
            rng_streams=dict(payload.get("rng_streams", {})),
        )
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc!r}") from exc


# ---------------------------------------------------------------------------
# per-try checkpoint files (group-parallel search)

def encode_try_checkpoint(
    key: str,
    try_result: TryResult | None = None,
    in_progress: InProgressTry | None = None,
) -> dict:
    """One try's checkpoint payload — completed result or mid-try state.

    The group-parallel search checkpoints each try in its *own* file,
    written by the owning group's leader: groups complete tries in
    independent orders, so a single monotone ``completed_tries`` list
    has no well-defined writer.  The key is the same search digest as
    the monolithic format — it covers neither world size nor group
    count, which is precisely what lets a search resumed with a
    different ``try_groups`` pick these files up (tries are reassigned
    to groups, completed ones are skipped wherever they land).
    """
    if (try_result is None) == (in_progress is None):
        raise ValueError(
            "exactly one of try_result / in_progress must be given"
        )
    return {
        "format_version": CKPT_FORMAT_VERSION,
        "kind": TRY_CKPT_KIND,
        "key": key,
        "try": None if try_result is None else _try_to_dict(try_result),
        "in_progress": (
            None if in_progress is None else _in_progress_to_dict(in_progress)
        ),
    }


def decode_try_checkpoint(
    payload: dict, key: str, spec: ModelSpec
) -> tuple[TryResult | None, InProgressTry | None]:
    """Validate and decode a per-try checkpoint payload."""
    try:
        if payload.get("kind") != TRY_CKPT_KIND:
            raise CheckpointError(
                f"not a per-try checkpoint file (kind={payload.get('kind')!r})"
            )
        version = payload.get("format_version")
        if version != CKPT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint format version {version!r} not supported "
                f"(expected {CKPT_FORMAT_VERSION})"
            )
        if payload.get("key") != key:
            raise CheckpointError(
                "try checkpoint belongs to a different search (config, "
                "model spec, or dataset changed since it was written)"
            )
        try_result = None
        if payload.get("try") is not None:
            try_result = _try_from_dict(payload["try"], spec)
        in_progress = None
        if payload.get("in_progress") is not None:
            in_progress = _in_progress_from_dict(payload["in_progress"], spec)
        return try_result, in_progress
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise CheckpointError(f"malformed try checkpoint: {exc!r}") from exc


# ---------------------------------------------------------------------------
# atomic file IO

def atomic_write_json(payload: dict, path: str | Path) -> Path:
    """Write ``payload`` as JSON with write-temp → fsync → rename.

    The temp file lives in the target's directory so the final
    ``os.replace`` is a same-filesystem atomic rename; a crash at any
    point leaves either the previous complete file or none at all.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    text = json.dumps(payload, indent=1)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint_file(path: str | Path) -> dict:
    """Read a checkpoint payload; any IO/parse problem is a CheckpointError."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path} (truncated or not JSON): {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"corrupt checkpoint {path}: not an object")
    return payload
