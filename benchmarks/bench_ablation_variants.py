"""EXP-A1 — §5 comparison: P-AutoClass vs wts-only parallelism.

The paper claims its design "exploits parallelism also in the
parameters computing phase, with a further improvement of performance"
over the Miller & Guo MIMD prototype.  This bench measures both
variants on the simulated CS-2.
"""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.programs import variant_program
from repro.harness.runner import ablation_variants, calibrated_machine
from repro.simnet.simworld import run_spmd_sim


@pytest.fixture(scope="module")
def a1(scale, record):
    n_items = max(scale.sizes[-1] * 12, 10_000)  # ~the paper's mid sizes
    result = ablation_variants(
        n_items=n_items, n_cycles=3, comm_scale=1.0, seed=scale.seed
    )
    record("ablation_variants", result.render())
    return result


def test_a1_pautoclass_beats_wts_only(a1, benchmark):
    # Equal at P=1 (no communication either way)...
    assert a1.advantage(1) == pytest.approx(1.0, rel=0.05)
    # ...and the paper's design wins once the M-step has to scale.
    assert a1.advantage(8) > 1.0
    assert a1.advantage(10) > 1.0

    db = make_paper_database(a1.n_items, seed=0)
    run = benchmark.pedantic(
        run_spmd_sim,
        args=(variant_program, 8, calibrated_machine(8), db,
              a1.n_classes, 3, 0, "wts_only"),
        kwargs={"compute_mode": "counted"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["advantage_at_8"] = round(a1.advantage(8), 3)
    assert run.elapsed > 0
