"""EXP-F8 — Figure 8: scaleup of base_cycle (fixed tuples/processor).

Regenerates both cluster-count series (J=8, J=16) and asserts the
paper's claim of a "nearly stable pattern"; benchmarks the largest
configuration (10 processors, 10 x tuples-per-proc items).
"""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.runner import fig8_scaleup
from repro.simnet.simworld import run_spmd_sim
from repro.harness.programs import scaleup_program
from repro.harness.runner import calibrated_machine


@pytest.fixture(scope="module")
def fig8(scale, record):
    result = fig8_scaleup(scale)
    record("fig8_scaleup", result.render())
    return result


def test_fig8_regenerates_paper_series(fig8, scale, benchmark):
    # Paper: "delivers nearly constant execution times in number of
    # processors showing good scaleup".
    for j in scale.scaleup_j:
        assert fig8.flatness(j) < 1.6
        procs, times = fig8.series(j)
        assert len(procs) == 10
        assert all(t > 0 for t in times)

    # J=16 cycles cost roughly twice J=8 (work is linear in J).
    _, t8 = fig8.series(8)
    _, t16 = fig8.series(16)
    assert 1.5 < (sum(t16) / sum(t8)) < 2.5

    db = make_paper_database(scale.scaleup_tuples_per_proc * 10, seed=scale.seed)
    run = benchmark.pedantic(
        run_spmd_sim,
        args=(scaleup_program, 10, calibrated_machine(10, comm_scale=scale.factor),
              db, 8, 3, scale.seed),
        kwargs={"compute_mode": "counted"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["sec_per_cycle_P10_J8"] = fig8.seconds_per_cycle[(8, 10)]
    assert run.elapsed > 0
