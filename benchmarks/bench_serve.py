"""EXP-SERVE bench — micro-batched scoring vs a single-item loop.

Acceptance bar from the serving PR, recorded in
``benchmarks/out/BENCH_serve.json`` (the committed copy there is the
baseline ``benchmarks/check_regression.py`` gates against):

micro-batched scoring through :class:`repro.serve.Scorer` must deliver
at least **5x** the throughput of an itemwise ``FittedModel.predict``
loop over the same stream of single-item requests, at
``max_batch=64``.  The win is pure per-call overhead amortization —
one fused E-step pass per coalesced batch instead of one per request —
so it is the serving-side analogue of the training-side fused-kernel
bar in ``bench_kernels.py``.

Only the single-item arm's elapsed time is regression-gated: the
batched arm is asserted through the speedup bar itself (gating both
would double-count the same noise source on a shared CI box).
"""

import json
import platform
from pathlib import Path

from repro.harness import ExperimentScale, serve_throughput_demo

N_REQUESTS = 1024
MAX_BATCH = 64
SPEEDUP_BAR = 5.0
#: Best-of-N to keep the shared-runner noise out of the gate.
REPEATS = 3


def test_serve_bench_json():
    best = None
    for _ in range(REPEATS):
        r = serve_throughput_demo(
            ExperimentScale(0.04),
            n_requests=N_REQUESTS,
            max_batch=MAX_BATCH,
        )
        if best is None or r.speedup > best.speedup:
            best = r

    report = {
        "benchmark": "EXP-SERVE micro-batched scoring throughput",
        "platform": platform.platform(),
        "workload": (
            f"{N_REQUESTS} single-item requests, J={best.n_classes} model "
            f"fitted on {best.n_train} tuples, Scorer max_batch={MAX_BATCH}, "
            f"{best.n_workers} worker(s), pre-filled queue, best of "
            f"{REPEATS}"
        ),
        "single": {
            "elapsed_s": best.single_elapsed_s,
            "items_per_s": best.single_items_per_s,
        },
        "batched": {
            "elapsed_s": best.batched_elapsed_s,
            "items_per_s": best.batched_items_per_s,
            "mean_batch_items": best.mean_batch_items,
        },
        "speedup": best.speedup,
        "bar": SPEEDUP_BAR,
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_serve.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert best.speedup >= SPEEDUP_BAR, report
