"""EXP-T1 — §3.1 text claim: base_cycle is ~99.5 % of the runtime.

Profiles the real sequential engine (host timings — this claim is about
the algorithm's structure, not the CS-2) and benchmarks one base_cycle.
"""

import pytest

from repro.data.synth import make_paper_database
from repro.engine.cycle import base_cycle
from repro.engine.init import initial_classification
from repro.harness.runner import t1_profile
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.util.rng import spawn_rng


@pytest.fixture(scope="module")
def t1(record):
    result = t1_profile()
    record("t1_profile", result.render())
    return result


def test_t1_base_cycle_dominates(t1, benchmark):
    # Paper: base_cycle ~ 99.5 % of total; we assert the dominance with
    # slack for Python per-try init overhead (the paper's tries ran
    # hundreds of cycles; see EXPERIMENTS.md).
    assert t1.cycle_fraction > 0.93
    # Paper (after [7]): update_wts and update_parameters dominate,
    # update_approximations is negligible.
    assert t1.wts_seconds > t1.params_seconds
    assert t1.approx_fraction_of_cycle < 0.1

    db = make_paper_database(10_000, seed=0)
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    clf = initial_classification(db, spec, 8, spawn_rng(0))
    clf, _, _ = base_cycle(db, clf)  # warm-up

    state = {"clf": clf}

    def one_cycle():
        state["clf"], _, _ = base_cycle(db, state["clf"])

    benchmark(one_cycle)
    benchmark.extra_info["base_cycle_fraction"] = round(t1.cycle_fraction, 4)
