"""EXP-A2 — ablation: which Allreduce algorithm carries the paper's
payloads best, and does the emergent simulated cost match the textbook
round structure."""

import numpy as np
import pytest

from repro.harness.programs import allreduce_program
from repro.harness.runner import ablation_collectives
from repro.mpc.api import CollectiveConfig
from repro.simnet.machine import meiko_cs2
from repro.simnet.simworld import run_spmd_sim


@pytest.fixture(scope="module")
def a2(record):
    result = ablation_collectives()
    record("ablation_collectives", result.render())
    return result


def test_a2_emergent_costs_match_textbook(a2, benchmark):
    """The simulator prices collectives by their actual message rounds;
    those emergent costs must track the closed-form expectations."""
    for key, measured in a2.measured.items():
        assert measured == pytest.approx(a2.expected[key], rel=0.6), key

    # For the paper's small payloads, latency dominates: the ring's
    # 2(P-1) rounds must lose to recursive doubling's log2(P) rounds.
    for p in a2.procs:
        if p >= 4:
            assert a2.measured[("recursive_doubling", p)] < a2.measured[("ring", p)]

    run = benchmark.pedantic(
        run_spmd_sim,
        args=(allreduce_program, 8, meiko_cs2(8), a2.nbytes, 20),
        kwargs={
            "collectives": CollectiveConfig(allreduce="recursive_doubling"),
            "compute_mode": "modeled",
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["us_per_allreduce"] = round(
        float(np.mean(run.results)) * 1e6, 1
    )
