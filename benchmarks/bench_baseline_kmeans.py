"""EXP-B1 — baseline: P-AutoClass vs parallel k-means (related work [10]).

Same SPMD pattern (partition, local stats, Allreduce, replicated
update) on a ~10x lighter kernel: k-means hits the communication wall
at lower processor counts, which is why the paper's compute-heavy
Bayesian clustering is the better fit for the multicomputer."""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.programs import kmeans_program
from repro.harness.runner import baseline_kmeans_comparison, calibrated_machine
from repro.simnet.simworld import run_spmd_sim


@pytest.fixture(scope="module")
def b1(scale, record):
    result = baseline_kmeans_comparison(n_items=10_000, seed=scale.seed)
    record("baseline_kmeans", result.render())
    return result


def test_b1_same_pattern_different_wall(b1, benchmark):
    # Both parallelize (elapsed decreases with P at first)...
    assert b1.sec_per_cycle_pautoclass[1] < b1.sec_per_cycle_pautoclass[0]
    assert b1.sec_per_iter_kmeans[1] < b1.sec_per_iter_kmeans[0]
    # ...k-means is much cheaper per iteration...
    assert b1.sec_per_iter_kmeans[0] < b1.sec_per_cycle_pautoclass[0]
    # ...and P-AutoClass's comm share per unit of compute is higher at
    # this size (the per-term-class collectives), so relative speedup
    # at P=10 favors the lighter-communication k-means here; both
    # saturate well below linear.
    assert max(b1.speedup("kmeans")) < 10
    assert max(b1.speedup("pautoclass")) < 10

    db = make_paper_database(10_000, seed=0)
    elapsed = benchmark.pedantic(
        run_spmd_sim,
        args=(kmeans_program, 8, calibrated_machine(8), db, 8, 5, 0),
        kwargs={"compute_mode": "counted"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["kmeans_s_per_iter_P8"] = round(
        b1.sec_per_iter_kmeans[b1.procs.index(8)], 4
    )
    assert elapsed.elapsed > 0
