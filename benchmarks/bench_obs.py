"""EXP-OBS — recorder overhead on the hot path.

The observability layer's acceptance bar: ``instrument="phases"`` must
add < 3 % wall time to the workload everything else is measured on —
the BENCH_kernels base-cycle configuration (N=10 000 paper-family
tuples, J=8 classes).  This bench times ``base_cycle`` with the null
recorder (``instrument="off"``, the process default) against the same
loop with a phases-level :class:`repro.obs.recorder.Recorder`
installed, and records the comparison in
``benchmarks/out/BENCH_obs.json``.

At ``"phases"`` the per-cycle cost is six context-managed
``perf_counter`` pairs plus a few dict updates; the assertion below is
what keeps it that way.
"""

import json
import platform
import time
from pathlib import Path

import pytest

from repro.data.synth import make_paper_database
from repro.engine.cycle import base_cycle
from repro.engine.init import initial_classification
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.obs.recorder import NULL_RECORDER, Recorder, current, recording
from repro.util.rng import spawn_rng

N_ITEMS = 10_000
N_CLASSES = 8
REPEATS = 30
OVERHEAD_BAR = 0.03


@pytest.fixture(scope="module")
def state():
    db = make_paper_database(N_ITEMS, seed=0)
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    clf = initial_classification(db, spec, N_CLASSES, spawn_rng(0))
    # Warm caches shared by both arms: kernel plan + workspace.
    clf, _, _ = base_cycle(db, clf)
    return db, clf


def _best_cycle_seconds(db, clf, repeats: int = REPEATS) -> float:
    """Best-of-N wall time for one base_cycle — robust to noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        base_cycle(db, clf)
        best = min(best, time.perf_counter() - t0)
    return best


def test_phases_overhead_json(state):
    db, clf = state
    assert current() is NULL_RECORDER  # the "off" arm is the default

    # Interleave the arms so drift (thermal, scheduler) hits both.
    off = float("inf")
    phases = float("inf")
    for _ in range(3):
        off = min(off, _best_cycle_seconds(db, clf))
        with recording(Recorder("phases")):
            phases = min(phases, _best_cycle_seconds(db, clf))

    overhead = phases / off - 1.0
    report = {
        "benchmark": "EXP-OBS recorder overhead on base_cycle",
        "workload": "BENCH_kernels config: make_paper_database, default spec",
        "n_items": N_ITEMS,
        "n_classes": N_CLASSES,
        "timing": f"best of 3 x {REPEATS} repeats, seconds per cycle",
        "platform": platform.platform(),
        "off_s": off,
        "phases_s": phases,
        "overhead": overhead,
        "bar": OVERHEAD_BAR,
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_obs.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert overhead < OVERHEAD_BAR, report


def test_full_level_still_cheap(state):
    """``"full"`` adds per-cycle telemetry; keep it within a loose bar."""
    db, clf = state
    off = _best_cycle_seconds(db, clf)
    with recording(Recorder("full")):
        full = _best_cycle_seconds(db, clf)
    assert full / off - 1.0 < 5 * OVERHEAD_BAR, (off, full)
