"""Benchmark suite configuration.

Every figure/claim of the paper has one ``bench_*`` file.  Each bench

1. regenerates its experiment once (at the scale given by
   ``REPRO_BENCH_SCALE``; default 0.04, ``1.0`` = the paper's full
   parameters),
2. writes the paper-style rendered rows/series to
   ``benchmarks/out/<experiment>.txt`` and prints them, and
3. times a representative unit of the experiment through
   pytest-benchmark so ``--benchmark-only`` produces comparable rows.

Run: ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.harness.experiments import ExperimentScale

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def record():
    """Write an experiment's rendered output to benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _record(name: str, rendered: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
        print(f"\n{rendered}\n")

    return _record
