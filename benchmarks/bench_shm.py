"""BENCH-SHM — shared-memory vs pipe transport, processes world.

Times repeated ``allreduce_into`` rounds over large float64 buffers in
a real 2-process world on both wires.  This is the transport the shm
rings were built for: the paper's ``update_wts`` /
``update_parameters`` reductions are exactly repeated large-payload
allreduces, and the pipe arm pays pickling plus two kernel copies per
hop where the shm arm pays one ``memcpy`` each way plus a token.

Protocol: per payload size, each rank times ``REPEATS`` allreduce
rounds after a warmup and a barrier; the world's cost is the slowest
rank; each arm takes the best of ``TRIALS`` worlds to damp scheduler
noise (this host has one core, so both ranks time-share it — the
*ratio* is what transfers).

Bars:

1. **Speedup** — shm must beat pipe by at least ``SPEEDUP_BAR`` (2x)
   at every payload size >= 1 MiB.
2. **Equality** — both arms must produce the bit-identical reduction
   result (the transport moves bytes, never changes them).
"""

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.mpc.procworld import run_spmd_processes

P = 2
#: Payload sizes in MiB of float64s (all below the 8 MiB ring default).
SIZES_MIB = (1, 4)
REPEATS = 20
TRIALS = 3
SPEEDUP_BAR = 2.0


def _allreduce_prog(comm, n_elems, repeats):
    buf = np.arange(n_elems, dtype=np.float64) + comm.rank
    comm.allreduce_into(buf)  # warmup: pools, rings, pipes all touched
    comm.barrier()
    t0 = time.perf_counter()
    for i in range(repeats):
        work = np.arange(n_elems, dtype=np.float64) * 0 + (comm.rank + i)
        comm.allreduce_into(work)
    elapsed = time.perf_counter() - t0
    return elapsed, float(work.sum())


def _run_arm(transport: str, n_elems: int) -> tuple[float, float]:
    best = float("inf")
    checksum = None
    for _ in range(TRIALS):
        results = run_spmd_processes(
            _allreduce_prog, P, n_elems, REPEATS,
            transport=transport, timeout=300,
        )
        world_s = max(r[0] for r in results)
        sums = {r[1] for r in results}
        assert len(sums) == 1, f"ranks disagree: {sums}"
        checksum = sums.pop()
        best = min(best, world_s)
    return best, checksum


def test_shm_bench_json():
    payloads = {}
    for mib in SIZES_MIB:
        n_elems = mib * (1 << 20) // 8
        nbytes = n_elems * 8
        arm = {}
        for transport in ("pipe", "shm"):
            seconds, checksum = _run_arm(transport, n_elems)
            arm[transport] = {
                "seconds": seconds,
                "rounds_per_s": REPEATS / seconds,
                "mb_per_s": REPEATS * nbytes / seconds / 1e6,
                "checksum": checksum,
            }
        # Equality: the wire must not change a bit of the reduction.
        assert arm["shm"]["checksum"] == arm["pipe"]["checksum"], arm
        arm["speedup"] = arm["pipe"]["seconds"] / arm["shm"]["seconds"]
        payloads[f"mib{mib}"] = arm

    report = {
        "benchmark": (
            "BENCH-SHM allreduce_into throughput, processes world, "
            "shm rings vs pickled pipes"
        ),
        "platform": platform.platform(),
        "workload": (
            f"P={P}, float64 payloads {SIZES_MIB} MiB, {REPEATS} "
            f"allreduce rounds per trial, best of {TRIALS} trials, "
            "slowest-rank timing"
        ),
        **payloads,
        "bars": {"speedup_min": SPEEDUP_BAR},
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_shm.json").write_text(payload, encoding="utf-8")
    print(payload)
    for name, arm in payloads.items():
        assert arm["speedup"] >= SPEEDUP_BAR, (name, report)
