#!/usr/bin/env python
"""Gate benchmark results against the committed baselines.

``benchmarks/out/`` is the single source of truth for benchmark
reports: the committed copies there are the baselines, and the bench
jobs overwrite them in the working tree with fresh numbers.  This
script therefore reads the *committed* version of each report through
``git show HEAD:benchmarks/out/<name>`` and compares it with the fresh
file on disk, failing — exit code 1 — when any timing metric regressed
by more than ``--tolerance`` (default 20 %).  Speedups are never
failures; they just print.

CI runs this right after the bench jobs regenerate the fresh reports::

    pytest benchmarks/bench_kernels.py -q
    python benchmarks/check_regression.py BENCH_kernels.json

With no file arguments every baseline that has a fresh counterpart is
checked.  A report with no committed baseline yet (a brand-new bench)
passes in record-only mode: the fresh numbers become the baseline once
they are committed.  A missing fresh report is an error when named
explicitly and a skip otherwise (the bench may not have run in this
job).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = Path(__file__).resolve().parent / "out"

#: metric paths (dotted) holding seconds — lower is better.
TIMING_METRICS: dict[str, tuple[str, ...]] = {
    "BENCH_kernels.json": (
        "kernels.update_wts.fused_s",
        "kernels.update_parameters.fused_s",
        "combined.fused_s",
    ),
    "BENCH_obs.json": ("off_s", "phases_s"),
    "BENCH_ckpt.json": ("off_s", "per_try_s"),
    # Virtual elapsed is deterministic, so both arms gate tightly.
    "BENCH_split.json": (
        "try_parallel.elapsed_g1_s",
        "try_parallel.elapsed_g4_s",
    ),
    # The batched arm is asserted via the >= 5x speedup bar inside the
    # bench; gating it here too would double-count the same noise.
    "BENCH_serve.json": ("single.elapsed_s",),
    # The in-memory arm is covered by the >= 0.7x throughput-ratio bar
    # inside the bench; only the streamed arm's wall time gates here.
    "BENCH_stream.json": ("streamed.fit_elapsed_s",),
    # Counted virtual time with a pinned cpu_scale: deterministic, so
    # both arms gate (the >= 1.15x speedup bar lives inside the bench).
    "BENCH_overlap.json": (
        "blocking.per_cycle_s",
        "overlap.per_cycle_s",
    ),
    # Wall time on a shared runner; the pipe arm is covered by the
    # >= 2x speedup bar inside the bench, so only the shm arm gates.
    "BENCH_shm.json": (
        "mib1.shm.seconds",
        "mib4.shm.seconds",
    ),
}


def committed_baseline(name: str) -> dict | None:
    """The committed copy of ``benchmarks/out/<name>``, or None if new."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:benchmarks/out/{name}"],
        cwd=REPO, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def _dig(payload: dict, dotted: str) -> float:
    node = payload
    for part in dotted.split("."):
        node = node[part]
    return float(node)


def compare(name: str, baseline: dict, tolerance: float) -> tuple[list[str], int]:
    """Compare one fresh report against its committed baseline.

    Returns (report lines, number of regressions).
    """
    fresh = json.loads((OUT / name).read_text(encoding="utf-8"))
    lines = [f"{name}:"]
    regressions = 0
    for metric in TIMING_METRICS[name]:
        base = _dig(baseline, metric)
        new = _dig(fresh, metric)
        ratio = new / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  << REGRESSION"
            regressions += 1
        elif ratio < 1.0 - tolerance:
            flag = "  (faster)"
        lines.append(
            f"  {metric:42s} base {base:.6g}s  now {new:.6g}s "
            f" x{ratio:.3f}{flag}"
        )
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        help="baseline file names to check (default: all with fresh runs)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed slowdown fraction before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")

    explicit = bool(args.files)
    names = args.files or sorted(TIMING_METRICS)
    total_regressions = 0
    checked = 0
    for name in names:
        if name not in TIMING_METRICS:
            print(f"error: no timing metrics registered for {name!r}",
                  file=sys.stderr)
            return 2
        if not (OUT / name).exists():
            if explicit:
                print(f"error: fresh report benchmarks/out/{name} missing "
                      "(did the bench run?)", file=sys.stderr)
                return 2
            print(f"{name}: no fresh report, skipped")
            continue
        baseline = committed_baseline(name)
        if baseline is None:
            print(f"{name}: no committed baseline yet, recorded only")
            checked += 1
            continue
        lines, regressions = compare(name, baseline, args.tolerance)
        print("\n".join(lines))
        total_regressions += regressions
        checked += 1
    if checked == 0:
        print("error: nothing was checked", file=sys.stderr)
        return 2
    if total_regressions:
        print(
            f"\nFAIL: {total_regressions} metric(s) regressed by more than "
            f"{args.tolerance:.0%} vs the committed baselines"
        )
        return 1
    print(f"\nOK: {checked} report(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
