"""EXP-F6 — Figure 6: average elapsed times vs number of processors.

Regenerates the full elapsed-time table (seven dataset sizes x ten
processor counts on the simulated CS-2) and benchmarks one
representative cell: the largest dataset on 10 processors.
"""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.runner import _run_classification_sim, fig6_elapsed


@pytest.fixture(scope="module")
def fig6(scale, record):
    result = fig6_elapsed(scale)
    record("fig6_elapsed", result.render())
    return result


def test_fig6_regenerates_paper_series(fig6, scale, benchmark):
    """Times decrease with processors; the gain grows with dataset size
    — the two observations the paper draws from its Figure 6."""
    for n_items in scale.sizes:
        procs, times = fig6.series(n_items)
        assert times[procs.index(10)] < times[procs.index(1)]
    gain_small = fig6.elapsed[(scale.sizes[0], 1)] - fig6.elapsed[(scale.sizes[0], 10)]
    gain_large = fig6.elapsed[(scale.sizes[-1], 1)] - fig6.elapsed[(scale.sizes[-1], 10)]
    assert gain_large > gain_small

    db = make_paper_database(scale.sizes[-1], seed=scale.seed)
    result = benchmark.pedantic(
        _run_classification_sim,
        args=(db, 10, scale, 0, "counted"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["virtual_elapsed_s"] = result.elapsed
    benchmark.extra_info["n_items"] = scale.sizes[-1]
