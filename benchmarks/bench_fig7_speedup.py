"""EXP-F7 — Figure 7: speedup T1/Tp per dataset size.

Regenerates every speedup series plus the linear reference, asserts the
paper's qualitative structure (small datasets peak early, the largest
scales to 10), and benchmarks the P=10 run of the smallest dataset —
the cell whose relative communication cost is the figure's whole story.
"""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.runner import _run_classification_sim, fig6_elapsed, fig7_speedup


@pytest.fixture(scope="module")
def fig7(scale, record):
    result = fig7_speedup(fig6=fig6_elapsed(scale))
    record("fig7_speedup", result.render())
    return result


def test_fig7_regenerates_paper_series(fig7, scale, benchmark):
    smallest, largest = scale.sizes[0], scale.sizes[-1]

    # Paper: "the P-AutoClass algorithm scales well up to 10 processors
    # for the largest datasets".
    assert fig7.peak_procs(largest) >= 9
    _, sp_large = fig7.speedup(largest)
    assert sp_large[-1] > 5.0

    # Paper: "for small datasets the speedup increases until the optimal
    # number of processors ... (e.g., 4 procs for 5000 tuples)".
    assert fig7.peak_procs(smallest) <= 6

    # Monotone ordering: larger datasets achieve higher speedup at P=10.
    at10 = [fig7.speedup(s)[1][-1] for s in scale.sizes]
    assert at10 == sorted(at10) or all(
        b >= a - 0.3 for a, b in zip(at10, at10[1:])
    )

    db = make_paper_database(smallest, seed=scale.seed)
    result = benchmark.pedantic(
        _run_classification_sim,
        args=(db, 10, scale, 0, "counted"),
        rounds=1,
        iterations=1,
    )
    _, sp_small = fig7.speedup(smallest)
    benchmark.extra_info["speedup_at_10"] = sp_small[-1]
    benchmark.extra_info["peak_procs"] = fig7.peak_procs(smallest)
    assert result.elapsed > 0
