"""EXP-A4 — ablation: the paper's Figure-5 loop-level Allreduces vs one
packed Allreduce per M-step.

The paper's drawn structure reduces each (class, attribute) block
separately; packing all statistics into a single collective removes
that latency multiplier.  This bench quantifies what the paper's
communication structure cost — and what this reproduction's packed
default saves."""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.programs import granularity_program
from repro.harness.runner import ablation_granularity, calibrated_machine
from repro.simnet.simworld import run_spmd_sim


@pytest.fixture(scope="module")
def a4(scale, record):
    result = ablation_granularity(n_items=10_000, n_cycles=3, seed=scale.seed)
    record("ablation_granularity", result.render())
    return result


def test_a4_packed_reduction_wins(a4, benchmark):
    for p in a4.procs:
        assert a4.overhead(p) >= 1.0
    # The gap widens with processors (more rounds per collective).
    assert a4.overhead(10) > a4.overhead(2)

    db = make_paper_database(a4.n_items, seed=0)
    run = benchmark.pedantic(
        run_spmd_sim,
        args=(granularity_program, 10, calibrated_machine(10), db,
              a4.n_classes, 3, 0, "packed"),
        kwargs={"compute_mode": "counted"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["per_term_class_overhead_P10"] = round(a4.overhead(10), 2)
    assert run.elapsed > 0
