"""EXP-T2 — §3 text claim: sequential time grows linearly with size.

("Considering that the execution time increases linearly with the size
of dataset...")  Regenerates the P=1 size sweep and checks the linear
fit; benchmarks the largest sequential run.
"""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.runner import _run_classification_sim, t2_linear_sequential


@pytest.fixture(scope="module")
def t2(scale, record):
    result = t2_linear_sequential(scale)
    record("t2_linear_seq", result.render())
    return result


def test_t2_linearity(t2, scale, benchmark):
    assert t2.r_squared > 0.999
    # Doubling the data roughly doubles the time.
    by_size = dict(zip(t2.sizes, t2.seconds))
    small, large = scale.sizes[1], scale.sizes[-1]
    ratio = by_size[large] / by_size[small]
    expected = large / small
    assert ratio == pytest.approx(expected, rel=0.15)

    db = make_paper_database(scale.sizes[-1], seed=scale.seed)
    run = benchmark.pedantic(
        _run_classification_sim,
        args=(db, 1, scale, 0, "counted"),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["r_squared"] = round(t2.r_squared, 6)
    assert run.elapsed > 0
