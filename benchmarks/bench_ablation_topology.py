"""EXP-A5 — ablation: interconnect topology.

Under the paper's software-dominated message costs the CS-2's fat tree
is interchangeable with any other topology (supporting the paper's
"easily portable to various MIMD distributed-memory parallel computers"
claim); under per-hop-dominated store-and-forward routing the topology
is decisive."""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.programs import variant_program
from repro.harness.runner import ablation_topology, calibrated_machine
from repro.simnet.simworld import run_spmd_sim
from repro.simnet.topology import Ring


@pytest.fixture(scope="module")
def a5(scale, record):
    result = ablation_topology(n_items=10_000, n_cycles=3, seed=scale.seed)
    record("ablation_topology", result.render())
    return result


def test_a5_topology_insensitive_under_mpi_latency(a5, benchmark):
    # Paper regime: software latency dwarfs hops — any topology works.
    assert a5.spread("effective_mpi") < 1.05
    # Store-and-forward regime: hop counts rule; lower-diameter networks
    # win, and the ring is the worst of the point-to-point networks.
    assert a5.spread("store_and_forward") > 1.5
    saf = a5.regime("store_and_forward")
    assert saf["crossbar"] <= min(saf.values()) * 1.01
    assert saf["ring"] >= saf["hypercube"]

    db = make_paper_database(10_000, seed=0)
    machine = calibrated_machine(10).with_topology(Ring(10))
    run = benchmark.pedantic(
        run_spmd_sim,
        args=(variant_program, 10, machine, db, 8, 3, 0, "pautoclass"),
        kwargs={"compute_mode": "counted"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["saf_spread"] = round(a5.spread("store_and_forward"), 2)
    assert run.elapsed > 0
