"""EXP-OVERLAP bench — nonblocking collectives hiding comm behind compute.

Runs the streamed P-AutoClass search on the simulated CS-2 at P=8 in a
**comm-bound** configuration (modern-CPU ``cpu_scale`` against the
machine's millisecond-class effective MPI latency, so the two Allreduce
cut points dominate each EM cycle) and compares the blocking hot path
against ``CollectiveConfig(overlap=True)`` — nonblocking reductions
launched inside the chunk pass and drained round-robin at the original
cut points.

Everything is virtual time under ``compute_mode="counted"`` with a
pinned ``cpu_scale``, so the numbers are deterministic across hosts and
``benchmarks/out/BENCH_overlap.json`` gates tightly in
``check_regression.py``.

Bars:

1. **Per-cycle speedup** — overlapped per-cycle virtual seconds must be
   at least ``SPEEDUP_BAR`` (1.15x) below blocking.  Per-cycle cost is
   measured as the elapsed difference between a long and a short run of
   the identical seeded search, which cancels startup/init exactly.
2. **Equality** — both arms must return the identical classification
   (same score, same cycle count): overlap may move rounds in time,
   never a bit in the results.
"""

import json
import platform
from pathlib import Path

from repro.data.shards import ShardedDatabase
from repro.data.synth import make_paper_database
from repro.engine.search import SearchConfig
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import CollectiveConfig
from repro.parallel.driver import run_pautoclass
from repro.simnet import run_spmd_sim
from repro.simnet.machine import meiko_cs2

P = 8
N_ITEMS = 4_096
SHARD_ITEMS = 512
CHUNK_ITEMS = 256
CYCLES_LONG = 6
CYCLES_SHORT = 1
SPEEDUP_BAR = 1.15

#: Modern-CPU scale: local E/M shrinks to microseconds per chunk while
#: the CS-2's effective MPI latency stays at 1.7 ms — the comm-bound
#: regime where every blocking reduction is pure idle time.
CPU_SCALE = 1.0


def _config(max_cycles: int) -> SearchConfig:
    return SearchConfig(
        start_j_list=(8,), max_n_tries=1, seed=29, max_cycles=max_cycles,
        rel_delta=1e-14, init_method="sharp",
    )


def _simulate(sdb, spec, *, overlap: bool, max_cycles: int):
    sim = run_spmd_sim(
        run_pautoclass,
        P,
        meiko_cs2(P, cpu_scale=CPU_SCALE),
        sdb,
        _config(max_cycles),
        spec,
        collectives=CollectiveConfig(overlap=overlap),
        compute_mode="counted",
    )
    return sim.elapsed, sim.results[0]


def test_overlap_bench_json(tmp_path):
    db = make_paper_database(N_ITEMS, seed=7)
    sdb = ShardedDatabase.from_database(
        db, tmp_path / "shards", shard_items=SHARD_ITEMS,
        chunk_items=CHUNK_ITEMS,
    )
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    del db

    arms = {}
    for name, overlap in (("blocking", False), ("overlap", True)):
        long_s, result = _simulate(
            sdb, spec, overlap=overlap, max_cycles=CYCLES_LONG
        )
        short_s, _ = _simulate(
            sdb, spec, overlap=overlap, max_cycles=CYCLES_SHORT
        )
        best = result.best
        n_long = best.classification.n_cycles
        arms[name] = {
            "elapsed_s": long_s,
            "per_cycle_s": (long_s - short_s) / (CYCLES_LONG - CYCLES_SHORT),
            "n_cycles": n_long,
            "score": best.score,
        }

    blk, ovl = arms["blocking"], arms["overlap"]
    # Equality: overlap reorders rounds in time, never a bit in results.
    assert ovl["n_cycles"] == blk["n_cycles"], arms
    assert ovl["score"] == blk["score"], arms

    speedup = blk["per_cycle_s"] / ovl["per_cycle_s"]
    report = {
        "benchmark": (
            "EXP-OVERLAP nonblocking collectives in the streamed E/M hot "
            "path, simulated CS-2"
        ),
        "platform": platform.platform(),
        "workload": (
            f"make_paper_database N={N_ITEMS}, J=8, P={P}, "
            f"chunk_items={CHUNK_ITEMS}, meiko_cs2 cpu_scale={CPU_SCALE} "
            f"(comm-bound), counted virtual time, per-cycle from "
            f"{CYCLES_LONG}-vs-{CYCLES_SHORT}-cycle runs"
        ),
        "blocking": blk,
        "overlap": ovl,
        "per_cycle_speedup": speedup,
        "bars": {"per_cycle_speedup_min": SPEEDUP_BAR},
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_overlap.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert speedup >= SPEEDUP_BAR, report
