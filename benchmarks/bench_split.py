"""EXP-SPLIT bench — two-level try parallelism + packed reductions.

Two acceptance bars from the two-level search PR, recorded in
``benchmarks/out/BENCH_split.json`` (the committed copy there is the
baseline ``benchmarks/check_regression.py`` gates against):

1. **Try-parallel elapsed** — a comm-bound 4-try search on the 8-rank
   virtual CS-2 must run at least 1.5x faster with ``try_groups=4``
   than with ``try_groups=1``.  The win is pure communication
   structure: per-rank compute is identical in both arms (each rank
   processes ``N/8`` items for every cycle of every try either way),
   but G=4 overlaps four tries and each Allreduce spans 2 ranks
   (1 recursive-doubling round) instead of 8 (3 rounds).  Virtual
   elapsed is deterministic, so both arms are regression-gated.

2. **Packed reduction** — the per-try :class:`repro.parallel.packed.
   ReductionPlan` must be allocation-free at steady state (asserted via
   the communicator pool's allocation counter after the two-call parity
   warmup) and is timed against the per-leaf pytree Allreduce it
   replaces.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.api import PAutoClass
from repro.data.synth import make_paper_database
from repro.mpc.reduceops import ReduceOp
from repro.mpc.threadworld import run_spmd_threads
from repro.parallel.packed import ReductionPlan

# Try-parallel arm: small N keeps the search comm-bound on the virtual
# machine, which is exactly the regime where shrinking the Allreduce
# span pays (the paper's Figure 6 small-size rows).
N_ITEMS = 240
N_PROCS = 8
START_J_LIST = (2, 3, 4, 5)
N_TRIES = 4
MAX_CYCLES = 6
SPEEDUP_BAR = 1.5

# Packed-reduction microbench shape: J=8 classes, 16 stats per class,
# reduced as one (8, 16) buffer vs 16 per-leaf vectors.
MB_CLASSES = 8
MB_STATS = 16
MB_REPS = 200
MB_PROCS = 4


def _sim_elapsed(try_groups) -> float:
    db = make_paper_database(N_ITEMS, seed=0)
    run = PAutoClass(
        n_processors=N_PROCS,
        backend="sim",
        try_groups=try_groups,
        start_j_list=START_J_LIST,
        max_n_tries=N_TRIES,
        seed=0,
        max_cycles=MAX_CYCLES,
    ).fit(db)
    assert run.sim_elapsed is not None
    return run.sim_elapsed


def _microbench_rank(comm):
    """Packed vs per-leaf reduction timing on one thread-world rank."""
    rng = np.random.default_rng(100 + comm.rank)
    stats = rng.standard_normal((MB_CLASSES, MB_STATS))
    leaves = [stats[:, i].copy() for i in range(MB_STATS)]

    plan = ReductionPlan(comm, MB_CLASSES, MB_STATS)
    plan.allreduce_stats(stats)  # parity-0 warmup (allocates)
    plan.allreduce_stats(stats)  # parity-1 warmup (allocates)
    allocs_before = comm.buffer_pool().n_allocations
    t0 = time.perf_counter()
    for _ in range(MB_REPS):
        plan.allreduce_stats(stats)
    packed_s = time.perf_counter() - t0
    allocs_after = comm.buffer_pool().n_allocations

    t0 = time.perf_counter()
    for _ in range(MB_REPS):
        comm.allreduce(leaves, ReduceOp.SUM)
    pytree_s = time.perf_counter() - t0
    return packed_s, pytree_s, allocs_after - allocs_before


def test_split_bench_json():
    elapsed_g1 = _sim_elapsed(1)
    elapsed_g4 = _sim_elapsed(4)
    speedup = elapsed_g1 / elapsed_g4

    per_rank = run_spmd_threads(_microbench_rank, MB_PROCS)
    packed_s = max(r[0] for r in per_rank)
    pytree_s = max(r[1] for r in per_rank)
    new_allocations = max(r[2] for r in per_rank)

    report = {
        "benchmark": "EXP-SPLIT try-parallel search + packed reductions",
        "platform": platform.platform(),
        "try_parallel": {
            "workload": (
                f"make_paper_database N={N_ITEMS}, J={list(START_J_LIST)}, "
                f"{N_TRIES} tries, max_cycles={MAX_CYCLES}, "
                f"{N_PROCS}-rank virtual CS-2 (counted compute)"
            ),
            "elapsed_g1_s": elapsed_g1,
            "elapsed_g4_s": elapsed_g4,
            "speedup": speedup,
            "bar": SPEEDUP_BAR,
        },
        "packed_reduction": {
            "workload": (
                f"({MB_CLASSES}, {MB_STATS}) float64 Allreduce x {MB_REPS}, "
                f"{MB_PROCS}-rank threads world, slowest rank"
            ),
            "packed_s": packed_s,
            "pytree_s": pytree_s,
            "ratio": pytree_s / packed_s if packed_s > 0 else float("inf"),
            "steady_state_allocations": new_allocations,
        },
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_split.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert speedup >= SPEEDUP_BAR, report
    assert new_allocations == 0, report
