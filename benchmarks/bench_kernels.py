"""EXP-K — kernel microbenchmarks on the host.

Times the primitives everything else is built from: the E-step, the
M-step, the packed-statistics reduction payloads, and each Allreduce
algorithm over the thread world.  These are host-time benchmarks (no
simulator): they are what the CPU calibration is anchored on.
"""

import numpy as np
import pytest

from repro.data.synth import make_paper_database
from repro.engine.init import initial_classification
from repro.engine.params import local_update_parameters
from repro.engine.wts import local_update_wts, update_wts
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import CollectiveConfig
from repro.mpc.threadworld import run_spmd_threads
from repro.util.rng import spawn_rng

N_ITEMS = 10_000
N_CLASSES = 8


@pytest.fixture(scope="module")
def state():
    db = make_paper_database(N_ITEMS, seed=0)
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    clf = initial_classification(db, spec, N_CLASSES, spawn_rng(0))
    wts, _ = update_wts(db, clf)
    return db, spec, clf, wts


def test_update_wts_kernel(state, benchmark):
    db, _spec, clf, _wts = state
    benchmark(local_update_wts, db, clf)
    benchmark.extra_info["items_x_classes"] = N_ITEMS * N_CLASSES


def test_update_parameters_kernel(state, benchmark):
    db, spec, _clf, wts = state
    benchmark(local_update_parameters, db, spec, wts)


def test_approximations_kernel(state, benchmark):
    from repro.engine.approx import update_approximations
    from repro.engine.wts import finalize_wts

    db, spec, clf, wts = state
    _, payload = local_update_wts(db, clf)
    red = finalize_wts(payload, clf.n_classes)
    stats = local_update_parameters(db, spec, wts)
    benchmark(update_approximations, clf, stats, red, db.n_items)


@pytest.mark.parametrize("algo", ["recursive_doubling", "ring", "reduce_bcast"])
def test_allreduce_threadworld(algo, benchmark):
    payload_len = N_CLASSES * 6  # the paper workload's packed stats

    def world():
        def prog(comm):
            return comm.allreduce(np.ones(payload_len))

        return run_spmd_threads(
            prog, 4, collectives=CollectiveConfig(allreduce=algo)
        )

    results = benchmark(world)
    np.testing.assert_allclose(results[0], 4.0)


def test_seeded_init_kernel(state, benchmark):
    db, spec, _clf, _wts = state
    benchmark(
        initial_classification, db, spec, N_CLASSES, spawn_rng(1), "seeded"
    )
