"""EXP-K — kernel microbenchmarks on the host.

Times the primitives everything else is built from: the E-step, the
M-step, the packed-statistics reduction payloads, and each Allreduce
algorithm over the thread world.  These are host-time benchmarks (no
simulator): they are what the CPU calibration is anchored on.

The E/M kernels are timed in both implementations (``"reference"``,
the seed's per-term numpy path, and ``"fused"``, the
:mod:`repro.kernels` layer), and :func:`test_fused_speedup_json`
records a machine-readable before/after comparison in
``benchmarks/out/BENCH_kernels.json``.
"""

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.synth import make_paper_database
from repro.engine.init import initial_classification
from repro.engine.params import local_update_parameters
from repro.engine.wts import local_update_wts, update_wts
from repro.models.registry import ModelSpec
from repro.models.summary import DataSummary
from repro.mpc.api import CollectiveConfig
from repro.mpc.threadworld import run_spmd_threads
from repro.util.rng import spawn_rng

N_ITEMS = 10_000
N_CLASSES = 8
KERNEL_MODES = ("reference", "fused")


@pytest.fixture(scope="module")
def state():
    db = make_paper_database(N_ITEMS, seed=0)
    spec = ModelSpec.default_for(db.schema, DataSummary.from_database(db))
    clf = initial_classification(db, spec, N_CLASSES, spawn_rng(0))
    wts, _ = update_wts(db, clf)
    return db, spec, clf, wts.copy()  # copy: detach from the fused pool


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_update_wts_kernel(state, benchmark, mode):
    db, _spec, clf, _wts = state
    benchmark(local_update_wts, db, clf, kernels=mode)
    benchmark.extra_info["items_x_classes"] = N_ITEMS * N_CLASSES
    benchmark.extra_info["kernels"] = mode


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_update_parameters_kernel(state, benchmark, mode):
    db, spec, _clf, wts = state
    benchmark(local_update_parameters, db, spec, wts, kernels=mode)
    benchmark.extra_info["kernels"] = mode


def _best_seconds(fn, repeats: int = 50) -> float:
    """Best-of-N wall time — robust against scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fused_speedup_json(state):
    """Before/after timing of the two hot kernels → BENCH_kernels.json.

    The fused layer's acceptance bar: >= 2x over the seed reference on
    the paper workload at N=10 000 items, J=8 classes.
    """
    db, spec, clf, wts = state
    timings: dict[str, dict[str, float]] = {"update_wts": {}, "update_parameters": {}}
    for mode in KERNEL_MODES:
        # Warm up: builds the plan/workspace so caching is amortized,
        # exactly as in a real run (one build per search).
        local_update_wts(db, clf, kernels=mode)
        local_update_parameters(db, spec, wts, kernels=mode)
        timings["update_wts"][mode] = _best_seconds(
            lambda m=mode: local_update_wts(db, clf, kernels=m)
        )
        timings["update_parameters"][mode] = _best_seconds(
            lambda m=mode: local_update_parameters(db, spec, wts, kernels=m)
        )

    cells = N_ITEMS * N_CLASSES
    report = {
        "benchmark": "EXP-K fused vs reference E/M kernels",
        "workload": "make_paper_database (2 real attributes), default spec",
        "n_items": N_ITEMS,
        "n_classes": N_CLASSES,
        "items_x_classes": cells,
        "timing": "best of 50 repeats, seconds",
        "platform": platform.platform(),
        "kernels": {},
    }
    total = {"reference": 0.0, "fused": 0.0}
    for name, per_mode in timings.items():
        ref, fused = per_mode["reference"], per_mode["fused"]
        total["reference"] += ref
        total["fused"] += fused
        report["kernels"][name] = {
            "reference_s": ref,
            "fused_s": fused,
            "speedup": ref / fused,
            "throughput_reference_cells_per_s": cells / ref,
            "throughput_fused_cells_per_s": cells / fused,
        }
    report["combined"] = {
        "reference_s": total["reference"],
        "fused_s": total["fused"],
        "speedup": total["reference"] / total["fused"],
    }

    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_kernels.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert report["combined"]["speedup"] >= 2.0, report["combined"]


def test_approximations_kernel(state, benchmark):
    from repro.engine.approx import update_approximations
    from repro.engine.wts import finalize_wts

    db, spec, clf, wts = state
    _, payload = local_update_wts(db, clf)
    red = finalize_wts(payload, clf.n_classes)
    stats = local_update_parameters(db, spec, wts)
    benchmark(update_approximations, clf, stats, red, db.n_items)


@pytest.mark.parametrize("algo", ["recursive_doubling", "ring", "reduce_bcast"])
def test_allreduce_threadworld(algo, benchmark):
    payload_len = N_CLASSES * 6  # the paper workload's packed stats

    def world():
        def prog(comm):
            return comm.allreduce(np.ones(payload_len))

        return run_spmd_threads(
            prog, 4, collectives=CollectiveConfig(allreduce=algo)
        )

    results = benchmark(world)
    np.testing.assert_allclose(results[0], 4.0)


def test_seeded_init_kernel(state, benchmark):
    db, spec, _clf, _wts = state
    benchmark(
        initial_classification, db, spec, N_CLASSES, spawn_rng(1), "seeded"
    )
