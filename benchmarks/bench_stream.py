"""EXP-STREAM bench — out-of-core streamed E/M vs the in-memory path.

Acceptance bars from the streaming-data PR, recorded in
``benchmarks/out/BENCH_stream.json`` (the committed copy there is the
baseline ``benchmarks/check_regression.py`` gates against):

1. **Equivalence** — the streamed fit must reproduce the in-memory
   fit's final classification exactly (same labels, same cycle count)
   on a dataset at least 10x the chunk budget.  This is the quick
   differential; the exhaustive four-world version lives in
   ``tests/stream/test_stream_equivalence.py``.

2. **Bounded memory** — the traced allocation peak of
   ``open + fit`` on the sharded database must be at least
   ``MEM_FACTOR``x below the peak of ``materialize + fit`` on the same
   data: peak O(chunk), not O(N).  Peaks are measured with
   ``tracemalloc`` (NumPy registers its allocator with it), in a
   separate instrumented pass so tracing overhead never pollutes the
   timing arm.

3. **Throughput** — streamed fitting (reading shards from disk every
   cycle) must deliver at least ``THROUGHPUT_BAR`` (0.7x) of the
   in-memory fit's throughput.  Best-of-N wall times from dedicated
   un-instrumented runs; only the streamed arm's elapsed time is
   regression-gated (the in-memory arm is covered by the ratio bar).

Kernel plan/workspace caches are cleared between arms so neither arm
inherits the other's warm state.
"""

import json
import platform
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro import AutoClass
from repro.data.shards import ShardedDatabase
from repro.data.synth import make_paper_database
from repro.kernels.plan import clear_plan_cache
from repro.kernels.workspace import clear_workspaces

N_ITEMS = 80_000
SHARD_ITEMS = 8_000
CHUNK_ITEMS = 8_000          # dataset is 10x the chunk budget
MEM_FACTOR = 4.0             # streamed peak must be >= 4x below in-memory
THROUGHPUT_BAR = 0.7
REPEATS = 3                  # best-of-N for the timing arms

#: Pinned so both arms run the identical cycle schedule.  J=16 keeps
#: the per-item E/M work large enough that the streamed arm's fixed
#: per-pass costs (re-mapping shards, rebuilding each chunk's design
#: matrix) sit in their realistic proportion.
CONFIG = dict(
    start_j_list=(16,), max_n_tries=1, seed=13, max_cycles=4,
    rel_delta=1e-14, init_method="sharp",
)


def _fresh_caches() -> None:
    clear_plan_cache()
    clear_workspaces()


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        _fresh_caches()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _traced_peak(fn) -> int:
    """Peak traced allocation in bytes while ``fn`` runs."""
    _fresh_caches()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_stream_bench_json(tmp_path):
    db = make_paper_database(N_ITEMS, seed=7)
    sdb = ShardedDatabase.from_database(
        db, tmp_path / "shards", shard_items=SHARD_ITEMS,
        chunk_items=CHUNK_ITEMS,
    )
    path = sdb.path
    data_bytes = sum(c.nbytes for c in db.columns) + sum(
        m.nbytes for m in db.missing
    )
    del db, sdb

    # -- Equivalence (also warms the OS page cache for both arms). ----
    _fresh_caches()
    streamed = ShardedDatabase.open(path)
    run_st = AutoClass(**CONFIG).fit(streamed)
    _fresh_caches()
    inmem = streamed.materialize()
    run_mem = AutoClass(**CONFIG).fit(inmem)
    np.testing.assert_array_equal(run_st.predict(streamed), run_mem.predict(inmem))
    n_cycles = run_mem.best.classification.n_cycles
    assert run_st.best.classification.n_cycles == n_cycles
    del run_st, run_mem, inmem, streamed

    # -- Peak memory: open+fit streamed vs materialize+fit in memory. -
    def streamed_fit():
        AutoClass(**CONFIG).fit(ShardedDatabase.open(path))

    def inmemory_fit(db=None):
        db = ShardedDatabase.open(path).materialize() if db is None else db
        AutoClass(**CONFIG).fit(db)

    streamed_peak = _traced_peak(streamed_fit)
    inmemory_peak = _traced_peak(inmemory_fit)
    mem_ratio = inmemory_peak / streamed_peak

    # -- Throughput: un-instrumented best-of-N, data load excluded
    # from the in-memory arm (it fits from RAM; the streamed arm pays
    # for its shard reads inside the fit, which is the honest deal).
    inmem = ShardedDatabase.open(path).materialize()
    streamed_s = _best_seconds(streamed_fit)
    inmemory_s = _best_seconds(lambda: inmemory_fit(inmem))
    throughput_ratio = inmemory_s / streamed_s

    report = {
        "benchmark": "EXP-STREAM out-of-core streamed E/M vs in-memory",
        "platform": platform.platform(),
        "workload": (
            f"make_paper_database N={N_ITEMS}, J={CONFIG['start_j_list'][0]}, "
            f"{n_cycles} cycles, shard_items={SHARD_ITEMS}, "
            f"chunk_items={CHUNK_ITEMS} ({N_ITEMS // CHUNK_ITEMS}x chunk "
            f"budget), best of {REPEATS}"
        ),
        "dataset_bytes": data_bytes,
        "streamed": {
            "fit_elapsed_s": streamed_s,
            "items_per_s": N_ITEMS / streamed_s,
            "peak_traced_bytes": streamed_peak,
        },
        "inmemory": {
            "fit_elapsed_s": inmemory_s,
            "items_per_s": N_ITEMS / inmemory_s,
            "peak_traced_bytes": inmemory_peak,
        },
        "peak_memory_ratio": mem_ratio,
        "throughput_ratio": throughput_ratio,
        "bars": {
            "peak_memory_ratio_min": MEM_FACTOR,
            "throughput_ratio_min": THROUGHPUT_BAR,
        },
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_stream.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert mem_ratio >= MEM_FACTOR, report
    assert throughput_ratio >= THROUGHPUT_BAR, report


def test_streamed_scoring_bounded(tmp_path, benchmark):
    """Shard-by-shard scoring of a fitted model through serve.scoring."""
    db = make_paper_database(4_000, seed=3)
    sdb = ShardedDatabase.from_database(
        db, tmp_path / "s", shard_items=500, chunk_items=250
    )
    run = AutoClass(**dict(CONFIG, start_j_list=(4,))).fit(sdb)
    labels = benchmark(run.predict, sdb)
    np.testing.assert_array_equal(labels, run.predict(db))
