"""EXP-CKPT — checkpoint overhead on the search hot path.

The checkpoint layer's acceptance bar: ``checkpoint="per_try"`` (the
recommended default — one atomic JSON write per converged try) must add
< 3 % wall time to a representative BIG_LOOP search.  This bench times
the same multi-try search with checkpointing off against per-try
checkpointing into a temp directory, and records the comparison in
``benchmarks/out/BENCH_ckpt.json`` (the committed copy there is the
baseline ``benchmarks/check_regression.py`` gates against).

``per_cycle`` — a write after every EM cycle — is also timed for
reference but held to a looser bar: it trades overhead for a smaller
recovery window and is opt-in.
"""

import json
import platform
import tempfile
import time
from pathlib import Path

from repro.ckpt.manager import Checkpointer
from repro.data.synth import make_paper_database
from repro.engine.search import SearchConfig, run_search

N_ITEMS = 30_000
REPEATS = 3
OVERHEAD_BAR = 0.03
#: per_cycle is opt-in (one fsynced write per EM cycle) — its cost is a
#: constant per cycle, so the share shrinks with data size; keep it
#: under a loose informational bar rather than the hot-path one.
PER_CYCLE_BAR = 0.5

CONFIG = SearchConfig(
    start_j_list=(4, 6, 8), max_n_tries=3, seed=0, max_cycles=10
)


def _best_search_seconds(db, checkpointer_factory, repeats=REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        ck = checkpointer_factory()
        t0 = time.perf_counter()
        run_search(db, CONFIG, checkpointer=ck)
        best = min(best, time.perf_counter() - t0)
    return best


def test_per_try_overhead_json():
    db = make_paper_database(N_ITEMS, seed=0)
    # Warm kernel plan/workspace caches shared by all arms.
    run_search(db, SearchConfig(start_j_list=(4,), max_n_tries=1, seed=0,
                                max_cycles=2))

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        def fresh(policy):
            # resume=False so every repeat redoes the full search
            def factory():
                return Checkpointer(
                    tmp / policy, policy=policy, resume=False
                )

            return factory

        # Interleave the arms so drift hits both.
        off = per_try = per_cycle = float("inf")
        for _ in range(2):
            off = min(off, _best_search_seconds(db, lambda: None))
            per_try = min(
                per_try, _best_search_seconds(db, fresh("per_try"))
            )
            per_cycle = min(
                per_cycle, _best_search_seconds(db, fresh("per_cycle"))
            )

    overhead = per_try / off - 1.0
    overhead_cycle = per_cycle / off - 1.0
    report = {
        "benchmark": "EXP-CKPT checkpoint overhead on run_search",
        "workload": (
            f"make_paper_database N={N_ITEMS}, "
            f"J={list(CONFIG.start_j_list)}, "
            f"max_cycles={CONFIG.max_cycles}"
        ),
        "n_items": N_ITEMS,
        "timing": f"best of 2 x {REPEATS} searches, seconds",
        "platform": platform.platform(),
        "off_s": off,
        "per_try_s": per_try,
        "per_cycle_s": per_cycle,
        "overhead_per_try": overhead,
        "overhead_per_cycle": overhead_cycle,
        "bar": OVERHEAD_BAR,
        "bar_per_cycle": PER_CYCLE_BAR,
    }
    out_dir = Path(__file__).parent / "out"
    out_dir.mkdir(exist_ok=True)
    payload = json.dumps(report, indent=2) + "\n"
    (out_dir / "BENCH_ckpt.json").write_text(payload, encoding="utf-8")
    print(payload)
    assert overhead < OVERHEAD_BAR, report
    assert overhead_cycle < PER_CYCLE_BAR, report
