"""EXP-A3 — §3 design claim: "the amount of data exchanged among the
processors is not so large since most operations are performed locally".

Measures bytes-on-wire per cycle per rank (tiny: the payloads are class
aggregates, never items) and the communication share of elapsed time
(which nonetheless grows with P and caps the speedup of small
datasets)."""

import pytest

from repro.data.synth import make_paper_database
from repro.harness.programs import variant_program
from repro.harness.runner import ablation_comm_share, calibrated_machine
from repro.simnet.simworld import run_spmd_sim


@pytest.fixture(scope="module")
def a3(scale, record):
    result = ablation_comm_share(n_items=10_000, n_cycles=3, seed=scale.seed)
    record("ablation_commshare", result.render())
    return result


def test_a3_little_data_much_latency(a3, benchmark):
    # Volume claim: a rank ships a few kilobytes per cycle, versus the
    # ~640 KB its partition of a 10k x 2-attr dataset occupies.
    assert all(b < 50_000 for b in a3.bytes_per_cycle_per_rank)

    # Latency reality: the comm *time* share still grows with P — the
    # mechanism behind Figure 7's small-dataset peaks.
    assert a3.comm_fraction[-1] > a3.comm_fraction[0]

    db = make_paper_database(a3.n_items, seed=0)
    run = benchmark.pedantic(
        run_spmd_sim,
        args=(variant_program, 10, calibrated_machine(10), db,
              a3.n_classes, 3, 0, "pautoclass"),
        kwargs={"compute_mode": "counted"},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["bytes_per_cycle_per_rank_P10"] = round(
        a3.bytes_per_cycle_per_rank[-1]
    )
    benchmark.extra_info["comm_share_P10"] = round(a3.comm_fraction[-1], 3)
    assert run.total_bytes > 0
